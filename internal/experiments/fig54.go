package experiments

import (
	"fmt"

	"repro/internal/gts"
	"repro/internal/heartbeat"
	"repro/internal/hmp"
	"repro/internal/mphars"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Fig54Cases are the six benchmark combinations of Figure 5.4.
var Fig54Cases = [][2]string{
	{"BO", "SW"}, // case 1
	{"BL", "SW"}, // case 2
	{"FL", "BL"}, // case 3
	{"BO", "FL"}, // case 4
	{"FL", "SW"}, // case 5
	{"BO", "BL"}, // case 6
}

// Fig54Versions are the four versions of Figure 5.4 in plot order.
var Fig54Versions = []string{"Baseline", "CONS-I", "MP-HARS-I", "MP-HARS-E"}

// MultiAppRun is one measured multi-application run.
type MultiAppRun struct {
	Case    [2]string
	Version string
	PerApp  [2]RunResult
	PowerW  float64
	Eff     float64 // geomean of per-app normalized perf, per watt
	Traces  [2][]mphars.TracePoint
}

// RunMultiApp runs one case under one version at the given target fraction.
// Targets are set per application from its solo maximum achievable rate.
func (e *Env) RunMultiApp(caseNames [2]string, version string, frac float64) MultiAppRun {
	var benches [2]workload.Benchmark
	var tgts [2]heartbeat.Target
	for i, s := range caseNames {
		b, ok := workload.ByShort(s)
		if !ok {
			panic(fmt.Sprintf("experiments: unknown benchmark %q", s))
		}
		benches[i] = b
		tgts[i] = e.Target(b, frac)
	}
	m := e.newMachine()
	var procs [2]*sim.Process
	spawn := func() {
		for i, b := range benches {
			procs[i] = m.Spawn(fmt.Sprintf("%s-%d", b.Name, i), b.New(e.Scale.Threads), e.Scale.HBWindow)
		}
	}
	run := MultiAppRun{Case: caseNames, Version: version}

	var traceFn func(i int) []mphars.TracePoint
	switch version {
	case "Baseline":
		m.SetPlacer(gts.New(e.Plat))
		spawn()
	case "CONS-I":
		c := mphars.NewConsI(m, mphars.ConsIConfig{})
		spawn()
		for i := range procs {
			c.Register(procs[i], tgts[i])
		}
		m.AddDaemon(c)
		traceFn = func(i int) []mphars.TracePoint { return c.Trace(procs[i]) }
	case "MP-HARS-I", "MP-HARS-E":
		v := mphars.MPHARSI
		if version == "MP-HARS-E" {
			v = mphars.MPHARSE
		}
		mgr := mphars.New(m, e.Model, mphars.Config{Version: v})
		m.AddDaemon(mgr)
		spawn()
		// Even initial partition: half of each cluster per application.
		for i := range procs {
			mgr.Register(m, procs[i], tgts[i],
				e.Plat.Clusters[hmp.Big].Cores/2, e.Plat.Clusters[hmp.Little].Cores/2)
		}
		traceFn = func(i int) []mphars.TracePoint { return mgr.Trace(procs[i]) }
	default:
		panic(fmt.Sprintf("experiments: unknown version %q", version))
	}

	m.RunUntil(e.Scale.MeasureFrom)
	e0, t0 := m.EnergyJ(), m.Now()
	m.RunUntil(e.Scale.RunTime)
	dt := sim.Seconds(m.Now() - t0)
	run.PowerW = (m.EnergyJ() - e0) / dt

	norms := make([]float64, 0, 2)
	for i := range procs {
		r := RunResult{
			Rate:   procs[i].HB.RateOver(t0, m.Now()),
			PowerW: run.PowerW,
		}
		r.NormPerf = heartbeat.NormalizedPerf(tgts[i], r.Rate)
		run.PerApp[i] = r
		// Guard the geomean: a zero norm (app never beat) floors at a tiny
		// positive value so one silent app doesn't erase the case.
		n := r.NormPerf
		if n <= 0 {
			n = 1e-3
		}
		norms = append(norms, n)
	}
	if run.PowerW > 0 {
		run.Eff = stats.GeoMean(norms) / run.PowerW
	}
	if traceFn != nil {
		for i := range procs {
			run.Traces[i] = traceFn(i)
		}
	}
	return run
}

// Fig54 regenerates Figure 5.4: per case and version, the case efficiency
// (geomean of the two applications' normalized performance, per watt)
// relative to the baseline version, plus the geometric mean over cases.
func Fig54(e *Env) *Report {
	// Pre-calibrate serially.
	for _, c := range Fig54Cases {
		for _, s := range c {
			if b, ok := workload.ByShort(s); ok {
				e.MaxRate(b)
			}
		}
	}
	type job struct{ ci, vi int }
	var jobs []job
	for ci := range Fig54Cases {
		for vi := range Fig54Versions {
			jobs = append(jobs, job{ci, vi})
		}
	}
	runs := make([]MultiAppRun, len(jobs))
	parallelFor(len(jobs), func(i int) {
		j := jobs[i]
		runs[i] = e.RunMultiApp(Fig54Cases[j.ci], Fig54Versions[j.vi], 0.50)
	})
	byCase := make(map[int]map[string]MultiAppRun)
	for i, j := range jobs {
		if byCase[j.ci] == nil {
			byCase[j.ci] = map[string]MultiAppRun{}
		}
		byCase[j.ci][Fig54Versions[j.vi]] = runs[i]
	}

	rep := &Report{Title: "Figure 5.4: performance/watt, multi-application (50%±5% targets)"}
	rep.Table.Header = append([]string{"case"}, Fig54Versions...)
	perVersion := map[string][]float64{}
	for ci := range Fig54Cases {
		base := byCase[ci]["Baseline"].Eff
		cells := []string{fmt.Sprintf("%d:%s+%s", ci+1, Fig54Cases[ci][0], Fig54Cases[ci][1])}
		for _, v := range Fig54Versions {
			rel := 0.0
			if base > 0 {
				rel = byCase[ci][v].Eff / base
			}
			perVersion[v] = append(perVersion[v], rel)
			cells = append(cells, stats.F(rel, 2))
		}
		rep.Table.AddRow(cells...)
	}
	gm := []string{"GM"}
	for _, v := range Fig54Versions {
		gm = append(gm, stats.F(stats.GeoMean(perVersion[v]), 2))
	}
	rep.Table.AddRow(gm...)
	rep.Notes = append(rep.Notes,
		"case efficiency = geomean of per-app normalized performance / average system power, relative to Baseline")
	return rep
}

// behaviourReport renders the Figures 5.5–5.7 behaviour graphs for case 4
// (BO + FL) under one version.
func behaviourReport(e *Env, version, figure string) *Report {
	run := e.RunMultiApp([2]string{"BO", "FL"}, version, 0.50)
	rep := &Report{Title: fmt.Sprintf("%s: behaviour graph of case 4 (BO+FL) under %s", figure, version)}
	rep.Table.Header = []string{"app", "beats", "rate", "norm perf", "target avg"}
	names := [2]string{"BO", "FL"}
	for i, name := range names {
		b, _ := workload.ByShort(name)
		tgt := e.Target(b, 0.50)
		rep.Table.AddRow(name,
			stats.F(float64(len(run.Traces[i])), 0),
			stats.F(run.PerApp[i].Rate, 2),
			stats.F(run.PerApp[i].NormPerf, 2),
			stats.F(tgt.Avg, 2))
		hps := &stats.Series{Name: "HPS"}
		bCore := &stats.Series{Name: "B_Core"}
		lCore := &stats.Series{Name: "L_Core"}
		bFreq := &stats.Series{Name: "B_Freq(GHz)"}
		lFreq := &stats.Series{Name: "L_Freq(GHz)"}
		maxLine := &stats.Series{Name: "Max"}
		minLine := &stats.Series{Name: "Min"}
		for _, tp := range run.Traces[i] {
			x := float64(tp.HBIndex)
			hps.Add(x, tp.HPS)
			bCore.Add(x, float64(tp.BigCores))
			lCore.Add(x, float64(tp.LittleCores))
			bFreq.Add(x, tp.BigGHz)
			lFreq.Add(x, tp.LittleGHz)
			maxLine.Add(x, tgt.Max)
			minLine.Add(x, tgt.Min)
		}
		rep.Series = append(rep.Series, hps, bCore, lCore, bFreq, lFreq, maxLine, minLine)
		rep.Charts = append(rep.Charts,
			stats.Chart(fmt.Sprintf("(%s) HPS vs target band", name),
				[]*stats.Series{hps, maxLine, minLine}, 60, 10),
			stats.Chart(fmt.Sprintf("(%s) cores and frequencies", name),
				[]*stats.Series{bCore, lCore, bFreq, lFreq}, 60, 10),
		)
	}
	return rep
}

// Fig55 regenerates Figure 5.5 (case 4 behaviour under CONS-I).
func Fig55(e *Env) *Report { return behaviourReport(e, "CONS-I", "Figure 5.5") }

// Fig56 regenerates Figure 5.6 (case 4 behaviour under MP-HARS-I).
func Fig56(e *Env) *Report { return behaviourReport(e, "MP-HARS-I", "Figure 5.6") }

// Fig57 regenerates Figure 5.7 (case 4 behaviour under MP-HARS-E).
func Fig57(e *Env) *Report { return behaviourReport(e, "MP-HARS-E", "Figure 5.7") }
