package scenario

import (
	"bytes"
	"testing"
)

// TestSteadyMatchesGeneral is the property suite for the steady-phase turbo
// path: generated multi-node scenarios — thermal loops, SLO'd apps over a
// real checkpoint-cost model, seeded fault injection, managed busy machines
// — replay with steady advancement on (the default), off (the general
// per-tick loop on every busy stretch), and off under full lockstep, and
// every variant must produce byte-identical traces and digests. Strict mode
// keeps the runtime invariant checkers on the equivalence surface. The
// suite runs under -race in CI alongside the event-core suite.
func TestSteadyMatchesGeneral(t *testing.T) {
	policies := []string{"least-loaded", "big-first", "coolest", "slo-aware"}
	maxRate := func(string, int) float64 { return 50 }

	for seed := int64(1); seed <= 4; seed++ {
		placement := policies[(seed-1)%int64(len(policies))]
		sc := Generate(seed, GenConfig{
			Nodes:      3,
			MaxApps:    3,
			Events:     5,
			DurationMS: 6000,
			Placement:  placement,
			Thermal:    seed%2 == 0,
			Periodic:   true,
			Faults:     true,
		})
		sc.Checkpoint = &CheckpointSpec{FreezeUS: 30_000, PerMBUS: 1_000, SizeMB: 8}
		for i := range sc.Apps {
			sc.Apps[i].SLO = &SLOSpec{TargetHPS: 20, SlackMS: 150}
		}

		run := func(noSteady, lockstep bool) (string, uint64) {
			var buf bytes.Buffer
			res, err := Run(sc, Options{
				Trace:    &buf,
				MaxRate:  maxRate,
				Strict:   true,
				NoSteady: noSteady,
				Lockstep: lockstep,
			})
			if err != nil {
				t.Fatalf("seed %d (%s, noSteady=%v lockstep=%v): %v",
					seed, placement, noSteady, lockstep, err)
			}
			return buf.String(), res.TraceDigest
		}

		refTrace, refDigest := run(true, true) // general loop, full lockstep
		for _, v := range []struct {
			name     string
			noSteady bool
		}{{"steady", false}, {"steady-off", true}} {
			trace, digest := run(v.noSteady, false)
			if digest != refDigest {
				t.Errorf("seed %d (%s): %s digest %016x != general %016x",
					seed, placement, v.name, digest, refDigest)
			}
			if trace != refTrace {
				t.Errorf("seed %d (%s): %s trace diverged from general (%s)",
					seed, placement, v.name, firstDiff(trace, refTrace))
			}
		}
	}
}
