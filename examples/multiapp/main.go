// Multi-application management with MP-HARS: two self-adaptive applications
// share the board; each owns a private core partition while the cluster
// frequencies are shared under the interference-aware protocol (freezing
// counts, frozen states, Table 4.3).
package main

import (
	"fmt"
	"log"

	"repro/internal/gts"
	"repro/internal/heartbeat"
	"repro/internal/hmp"
	"repro/internal/mphars"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/workload"
)

// soloMax measures one benchmark's maximum achievable rate running alone.
func soloMax(plat *hmp.Platform, board *power.GroundTruth, short string) float64 {
	b, _ := workload.ByShort(short)
	m := sim.New(plat, sim.Config{Power: board})
	m.SetPlacer(gts.New(plat))
	p := m.Spawn(b.Name, b.New(8), 10)
	m.Run(30 * sim.Second)
	return p.HB.RateOver(12*sim.Second, m.Now())
}

func main() {
	plat := hmp.Default()
	board := power.DefaultGroundTruth(plat)
	model, err := power.ProfileAndFit(plat, board, power.ProfileConfig{})
	if err != nil {
		log.Fatal(err)
	}

	// Per-application targets: half of each solo maximum.
	names := [2]string{"BO", "FL"}
	var targets [2]heartbeat.Target
	for i, n := range names {
		max := soloMax(plat, board, n)
		targets[i] = heartbeat.TargetAround(max, 0.50, 0.05)
		fmt.Printf("%s: solo max %.2f hb/s, target %.2f\n", n, max, targets[i].Avg)
	}

	// One machine, two applications, one MP-HARS manager.
	m := sim.New(plat, sim.Config{Power: board})
	mgr := mphars.New(m, model, mphars.Config{Version: mphars.MPHARSE})
	m.AddDaemon(mgr)
	var procs [2]*sim.Process
	for i, n := range names {
		b, _ := workload.ByShort(n)
		procs[i] = m.Spawn(b.Name, b.New(8), 10)
		// Even initial partition: 2 big + 2 little cores each.
		mgr.Register(m, procs[i], targets[i], 2, 2)
	}

	for step := 0; step < 6; step++ {
		m.Run(20 * sim.Second)
		fmt.Printf("\nt=%3.0fs  big cluster %.1f GHz%s, little %.1f GHz%s\n",
			sim.Seconds(m.Now()),
			float64(plat.Clusters[hmp.Big].KHz(m.Level(hmp.Big)))/1e6, frozenMark(mgr, hmp.Big),
			float64(plat.Clusters[hmp.Little].KHz(m.Level(hmp.Little)))/1e6, frozenMark(mgr, hmp.Little))
		for i, p := range procs {
			rec, _ := p.HB.Latest()
			big, little := mgr.Allocation(p)
			fmt.Printf("  %-3s rate=%.2f (target %.2f) cores: %d big + %d little\n",
				names[i], rec.WindowRate, targets[i].Avg, big, little)
		}
	}

	fmt.Printf("\ntotal power %.2f W; searches: %d\n", m.AvgPowerW(), mgr.Searches())
	fmt.Println("core partitions never overlapped; frequency decreases froze the")
	fmt.Println("shared cluster until every application re-collected reliable data.")
}

func frozenMark(mgr *mphars.Manager, k hmp.ClusterKind) string {
	if mgr.Frozen(k) {
		return " [frozen]"
	}
	return ""
}
