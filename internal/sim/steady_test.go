package sim_test

import (
	"math"
	"testing"

	"repro/internal/hmp"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/thermal"
)

// busySteady builds a warm busy machine whose next stretch is certifiable:
// one long-unit spinner thread (nothing completes for a while), one general
// Step to warm the power memo and settle placement.
func busySteady(t *testing.T, daemons ...sim.Daemon) *sim.Machine {
	t.Helper()
	plat := hmp.Default()
	m := sim.New(plat, sim.Config{Power: power.DefaultGroundTruth(plat)})
	for _, d := range daemons {
		m.AddDaemon(d)
	}
	m.Spawn("s", &spinner{threads: 1, unit: 1e9}, 0)
	m.Step()
	return m
}

// TestSteadyUntilGates pins the conditions under which no steady window
// exists at all: idle machines belong to InertUntil, a cold power memo
// declines, and a daemon outside both the SteadyDaemon and Sleeper
// contracts pins the machine to per-tick stepping.
func TestSteadyUntilGates(t *testing.T) {
	plat := hmp.Default()

	// Idle machine: steady certification is for machines with work in
	// flight.
	m := sim.New(plat, sim.Config{Power: power.DefaultGroundTruth(plat)})
	m.Step()
	if u := m.SteadyUntil(m.Now() + sim.Second); u != m.Now() {
		t.Fatalf("idle machine certified steady until %d", u)
	}

	// Busy but cold: the first tick after spawn must run through Step to
	// warm the energy memo.
	m = sim.New(plat, sim.Config{Power: power.DefaultGroundTruth(plat)})
	m.Spawn("s", &spinner{threads: 1, unit: 1e9}, 0)
	if u := m.SteadyUntil(m.Now() + sim.Second); u != m.Now() {
		t.Fatalf("cold busy machine certified steady until %d", u)
	}

	// Warm and busy: certifiable to the caller's limit.
	m.Step()
	limit := m.Now() + sim.Second
	if u := m.SteadyUntil(limit); u != limit {
		t.Fatalf("warm busy machine certified until %d, want %d", u, limit)
	}

	// A daemon that is neither SteadyDaemon nor Sleeper forces per-tick
	// stepping.
	m2 := busySteady(t, &tickCounter{})
	if u := m2.SteadyUntil(m2.Now() + sim.Second); u != m2.Now() {
		t.Fatalf("non-steady daemon certified steady until %d", u)
	}
}

// TestSteadyBoundaryExact pins the window bound to the exact microsecond for
// each bounding source — the caller's limit, the first pending timer
// (tick-aligned and not), and a sleeping daemon's NextWake. Off-by-one
// errors here would silently shift which tick runs through the general path.
func TestSteadyBoundaryExact(t *testing.T) {
	cases := []struct {
		name  string
		setup func(m *sim.Machine) // arms the bound; machine is warm+busy at 1 ms
		want  sim.Time             // expected SteadyUntil result
	}{
		{
			name:  "caller limit",
			setup: func(m *sim.Machine) {},
			want:  500 * sim.Millisecond,
		},
		{
			name: "timer on the tick grid",
			setup: func(m *sim.Machine) {
				m.Spawn("w", &spinner{threads: 1, unit: 0.01, delay: 200 * sim.Millisecond}, 0)
			},
			want: 200 * sim.Millisecond,
		},
		{
			name: "timer off the tick grid",
			setup: func(m *sim.Machine) {
				m.Spawn("w", &spinner{threads: 1, unit: 0.01, delay: 200*sim.Millisecond + 500}, 0)
			},
			want: 200*sim.Millisecond + 500,
		},
		{
			name: "sleeping daemon NextWake",
			// The napper was added before setup ran, so its first wake at
			// time 0 already happened during the warming Step; its next
			// deadline is the bound.
			want: 70 * sim.Millisecond,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var daemons []sim.Daemon
			if tc.setup == nil {
				daemons = append(daemons, &napper{period: 70 * sim.Millisecond})
			}
			m := busySteady(t, daemons...)
			if tc.setup != nil {
				tc.setup(m)
			}
			u := m.SteadyUntil(500 * sim.Millisecond)
			if u != tc.want {
				t.Fatalf("SteadyUntil = %d, want %d", u, tc.want)
			}
			// The certified window must actually advance to its bound (or
			// its tick-grid ceiling): nothing inside it may stop early.
			if !m.RunSteady(u) {
				t.Fatal("RunSteady advanced nothing inside a certified window")
			}
			tick := sim.Time(sim.Millisecond)
			wantNow := (u + tick - 1) / tick * tick
			if m.Now() != wantNow {
				t.Fatalf("after RunSteady now = %d, want %d", m.Now(), wantNow)
			}
		})
	}
}

// TestSteadyCompletionEdgeExact pins the heartbeat-window edge: RunSteady
// must stop exactly one tick before a unit completes, handing that tick —
// and only that tick — to the general path. The expected tick index comes
// from a per-tick reference run of the identical machine, so the test pins
// the off-by-one without hardcoding platform speed constants.
func TestSteadyCompletionEdgeExact(t *testing.T) {
	build := func() (*sim.Machine, *sim.Process) {
		plat := hmp.Default()
		m := sim.New(plat, sim.Config{Power: power.DefaultGroundTruth(plat)})
		p := m.Spawn("s", &spinner{threads: 1, unit: 2.0, beats: true}, 0)
		return m, p
	}

	// Reference: step until the first unit completes (the first heartbeat).
	ref, rp := build()
	for rp.HB.Count() == 0 {
		ref.Step()
		if ref.Now() > 10*sim.Second {
			t.Fatal("reference run never completed a unit")
		}
	}
	completionEnd := ref.Now() // end of the tick that completed the unit

	// Steady: after the warming tick, one certified window must advance to
	// exactly the completion tick's start, not into or past it.
	m, p := build()
	m.Step()
	limit := sim.Time(10 * sim.Second)
	u := m.SteadyUntil(limit)
	if u != limit {
		t.Fatalf("SteadyUntil = %d, want uncapped %d", u, limit)
	}
	if !m.RunSteady(u) {
		t.Fatal("RunSteady advanced nothing")
	}
	wantStop := completionEnd - sim.Time(sim.Millisecond)
	if m.Now() != wantStop {
		t.Fatalf("RunSteady stopped at %d, want %d (one tick before completion)", m.Now(), wantStop)
	}
	if p.HB.Count() != 0 {
		t.Fatal("steady window completed a unit; completions belong to the general path")
	}
	// The handed-over tick completes the unit on the general path.
	m.Step()
	if p.HB.Count() != 1 {
		t.Fatalf("general tick after the window did not complete the unit (beats=%d)", p.HB.Count())
	}
	if m.Now() != completionEnd {
		t.Fatalf("completion tick ended at %d, want %d", m.Now(), completionEnd)
	}
}

// TestSteadyGovernorEdgeExact pins the thermal-governor boundary: with a
// governor heating toward its throttle zone, the steady window must end
// exactly at the tick whose zone switch actuates a ceiling change — that
// tick runs through the general path, and the steady machine's cap history
// stays tick-identical to the reference.
func TestSteadyGovernorEdgeExact(t *testing.T) {
	spec := thermal.Spec{Enabled: true, TripC: 45, ThrottleC: 33, ReleaseC: 30}
	build := func() (*sim.Machine, *thermal.Governor) {
		plat := hmp.Default()
		m := sim.New(plat, sim.Config{Power: power.DefaultGroundTruth(plat)})
		gov, err := thermal.NewGovernor(spec)
		if err != nil {
			t.Fatal(err)
		}
		m.AddDaemon(gov)
		m.Spawn("s", &spinner{threads: 8, unit: 1e9}, 0)
		return m, gov
	}

	// Reference: step per tick to the first ceiling change.
	ref, _ := build()
	capAt := sim.Time(0)
	base := ref.LevelCap(hmp.Big)
	for ref.Now() < 10*sim.Second {
		ref.Step()
		if ref.LevelCap(hmp.Big) != base {
			capAt = ref.Now() // end of the actuating tick
			break
		}
	}
	if capAt == 0 {
		t.Fatal("governor never throttled; the fixture must heat into the throttle zone")
	}

	// Steady: windows must advance right up to the actuating tick and hand
	// it to the general path.
	m, gov := build()
	m.Step()
	limit := sim.Time(10 * sim.Second)
	for m.Now() < capAt-sim.Time(sim.Millisecond) {
		u := m.SteadyUntil(limit)
		if u <= m.Now() {
			m.Step()
			continue
		}
		if !m.RunSteady(u) {
			m.Step()
		}
		if m.Now() > capAt-sim.Time(sim.Millisecond) {
			t.Fatalf("steady advancement ran through the actuating tick: now %d, actuation at %d", m.Now(), capAt)
		}
	}
	if m.LevelCap(hmp.Big) != base {
		t.Fatal("ceiling changed before the actuating tick")
	}
	m.Step()
	if m.Now() != capAt || m.LevelCap(hmp.Big) == base {
		t.Fatalf("actuating tick: now %d cap %d, want actuation at %d", m.Now(), m.LevelCap(hmp.Big), capAt)
	}
	if g, r := gov.TempC(hmp.Big), spec.ThrottleC; g < r {
		t.Fatalf("throttle fired below the throttle zone: %.2f°C < %.2f°C", g, r)
	}
}

// TestSteadyMatchesStepping is the machine-level equivalence property for
// the steady turbo path: RunUntil with steady advancement must leave a busy,
// thermally instrumented, heartbeat-emitting machine bit-for-bit where the
// per-tick reference loop leaves it — clock, exact energy bits, retired
// work, heartbeats, overhead, temperatures, and governor counters.
func TestSteadyMatchesStepping(t *testing.T) {
	build := func() (*sim.Machine, *sim.Process, *thermal.Governor) {
		plat := hmp.Default()
		m := sim.New(plat, sim.Config{Power: power.DefaultGroundTruth(plat)})
		gov, err := thermal.NewGovernor(thermal.Spec{Enabled: true, TripC: 45, ThrottleC: 33, ReleaseC: 30})
		if err != nil {
			t.Fatal(err)
		}
		m.AddDaemon(gov)
		m.AddDaemon(&napper{period: 70 * sim.Millisecond})
		p := m.Spawn("s", &spinner{threads: 4, unit: 0.3, beats: true}, 0)
		return m, p, gov
	}

	fast, fp, fgov := build()
	slow, sp, sgov := build()

	end := sim.Time(2 * sim.Second)
	fast.RunUntil(end)
	for slow.Now() < end {
		slow.Step()
	}

	if fast.Now() != slow.Now() {
		t.Fatalf("clocks diverged: %d != %d", fast.Now(), slow.Now())
	}
	if fb, sb := math.Float64bits(fast.EnergyJ()), math.Float64bits(slow.EnergyJ()); fb != sb {
		t.Fatalf("energy diverged: %x != %x (%v vs %v)", fb, sb, fast.EnergyJ(), slow.EnergyJ())
	}
	for k := hmp.ClusterKind(0); k < hmp.NumClusters; k++ {
		if math.Float64bits(fast.ClusterEnergyJ(k)) != math.Float64bits(slow.ClusterEnergyJ(k)) {
			t.Fatalf("cluster %v energy diverged: %v != %v", k, fast.ClusterEnergyJ(k), slow.ClusterEnergyJ(k))
		}
		if math.Float64bits(fgov.TempC(k)) != math.Float64bits(sgov.TempC(k)) {
			t.Fatalf("cluster %v temperature diverged: %v != %v", k, fgov.TempC(k), sgov.TempC(k))
		}
		if math.Float64bits(fgov.PeakC(k)) != math.Float64bits(sgov.PeakC(k)) {
			t.Fatalf("cluster %v peak diverged: %v != %v", k, fgov.PeakC(k), sgov.PeakC(k))
		}
		if fast.LevelCap(k) != slow.LevelCap(k) {
			t.Fatalf("cluster %v cap diverged: %d != %d", k, fast.LevelCap(k), slow.LevelCap(k))
		}
	}
	if math.Float64bits(fp.WorkDone()) != math.Float64bits(sp.WorkDone()) {
		t.Fatalf("work diverged: %v != %v", fp.WorkDone(), sp.WorkDone())
	}
	if fp.HB.Count() != sp.HB.Count() {
		t.Fatalf("heartbeats diverged: %d != %d", fp.HB.Count(), sp.HB.Count())
	}
	if fast.Overhead() != slow.Overhead() {
		t.Fatalf("overhead diverged: %d != %d", fast.Overhead(), slow.Overhead())
	}
	if fgov.Throttles() != sgov.Throttles() || fgov.Trips() != sgov.Trips() || fgov.Releases() != sgov.Releases() {
		t.Fatalf("governor counters diverged: %d/%d/%d != %d/%d/%d",
			fgov.Throttles(), fgov.Trips(), fgov.Releases(),
			sgov.Throttles(), sgov.Trips(), sgov.Releases())
	}
}
