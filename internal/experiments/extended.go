package experiments

import (
	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/workload"
)

// ExtendedSuite runs the three headline versions (Baseline, HARS-E,
// HARS-EI) over the full ten-benchmark catalog — the paper's six plus the
// extended models. This is *not* a paper figure; it checks that HARS's
// improvements generalize beyond the evaluated set (memory-bound canneal,
// the dedup and x264 pipelines, streamcluster's phase jumps).
func ExtendedSuite(e *Env) *Report {
	versions := []string{"Baseline", "HARS-E", "HARS-EI"}
	benches := workload.AllExtended()
	rep := &Report{Title: "Extended suite (beyond the paper): perf/watt at the 50%±5% target"}
	rep.Table.Header = append([]string{"bench"}, versions...)

	for _, b := range benches {
		e.MaxRate(b) // serial calibration, cached
	}
	type job struct{ bi, vi int }
	var jobs []job
	for bi := range benches {
		for vi := range versions {
			jobs = append(jobs, job{bi, vi})
		}
	}
	results := make([]RunResult, len(jobs))
	parallelFor(len(jobs), func(i int) {
		j := jobs[i]
		b := benches[j.bi]
		tgt := e.Target(b, 0.50)
		switch versions[j.vi] {
		case "Baseline":
			results[i] = e.RunBaseline(b, tgt)
		case "HARS-E":
			results[i] = e.RunHARS(b, tgt, core.Config{Version: core.HARSE})
		case "HARS-EI":
			results[i] = e.RunHARS(b, tgt, core.Config{Version: core.HARSEI})
		}
	})
	perVersion := map[string][]float64{}
	for bi := range benches {
		base := results[bi*len(versions)].PP
		cells := []string{benches[bi].Short}
		for vi, v := range versions {
			rel := 0.0
			if base > 0 {
				rel = results[bi*len(versions)+vi].PP / base
			}
			perVersion[v] = append(perVersion[v], rel)
			cells = append(cells, stats.F(rel, 2))
		}
		rep.Table.AddRow(cells...)
	}
	gm := []string{"GM"}
	for _, v := range versions {
		gm = append(gm, stats.F(stats.GeoMean(perVersion[v]), 2))
	}
	rep.Table.AddRow(gm...)
	rep.Notes = append(rep.Notes,
		"benchmarks beyond the paper's six: CA=canneal, DE=dedup, SC=streamcluster, X2=x264")
	return rep
}
