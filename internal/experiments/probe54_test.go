package experiments

import (
	"testing"
)

// TestProbeMultiApp logs quick-scale Figure 5.4 numbers for inspection.
func TestProbeMultiApp(t *testing.T) {
	if testing.Short() {
		t.Skip("probe only")
	}
	e, err := NewEnv(Quick())
	if err != nil {
		t.Fatal(err)
	}
	for ci, c := range Fig54Cases {
		base := e.RunMultiApp(c, "Baseline", 0.50)
		t.Logf("case %d (%s+%s): baseline eff=%.4f pw=%.2f normA=%.2f normB=%.2f",
			ci+1, c[0], c[1], base.Eff, base.PowerW, base.PerApp[0].NormPerf, base.PerApp[1].NormPerf)
		for _, v := range []string{"CONS-I", "MP-HARS-I", "MP-HARS-E"} {
			r := e.RunMultiApp(c, v, 0.50)
			t.Logf("  %-10s eff=%.4f rel=%.2f pw=%.2fW normA=%.2f normB=%.2f rateA=%.2f rateB=%.2f",
				v, r.Eff, r.Eff/base.Eff, r.PowerW,
				r.PerApp[0].NormPerf, r.PerApp[1].NormPerf,
				r.PerApp[0].Rate, r.PerApp[1].Rate)
		}
	}
}
