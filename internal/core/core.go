// Package core implements HARS, the heterogeneity-aware runtime system for
// self-adaptive multithreaded applications (the paper's primary
// contribution).
//
// HARS consists of three components:
//
//   - the performance estimator (Table 3.1): given a candidate system state
//     it computes the thread assignment that minimizes the completion time
//     of an equally-partitioned unit of work, the resulting estimated
//     execution time t_f = max(t_B, t_L), and the per-cluster utilizations;
//   - the power estimator (Equations 3.1–3.2): per-cluster linear models
//     P = α·(C_U·U_U) + β fitted offline from profiled sensor data
//     (internal/power);
//   - the runtime manager (Algorithms 1–2): a daemon that watches the
//     application's heartbeat rate, and when it leaves the target band,
//     sweeps the neighbouring system states (bounded by the m, n and
//     Manhattan-distance d parameters), scores each candidate by normalized
//     performance per watt, applies the best state, and schedules the
//     application's threads onto the allocated cores with either the
//     chunk-based or the interleaving scheduler.
//
// Three presets mirror the paper's versions: HARS-I (incremental search,
// d = 1), HARS-E (exhaustive search, m = n = 4, d = 7, chunk-based
// scheduling) and HARS-EI (HARS-E with the interleaving scheduler).
package core
