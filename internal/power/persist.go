package power

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/hmp"
)

// WriteJSON serializes a fitted linear model so the offline calibration can
// be cached and shared between runs (the paper's profiling pass takes
// minutes on real hardware).
func (lm *LinearModel) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(lm); err != nil {
		return fmt.Errorf("power: encode model: %w", err)
	}
	return nil
}

// ReadModel parses a fitted linear model and validates its shape against
// the platform it will estimate for.
func ReadModel(r io.Reader, plat *hmp.Platform) (*LinearModel, error) {
	var lm LinearModel
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&lm); err != nil {
		return nil, fmt.Errorf("power: decode model: %w", err)
	}
	for k := hmp.ClusterKind(0); k < hmp.NumClusters; k++ {
		want := plat.Clusters[k].Levels()
		if len(lm.Alpha[k]) != want || len(lm.Beta[k]) != want {
			return nil, fmt.Errorf("power: model has %d/%d levels for %s, platform has %d",
				len(lm.Alpha[k]), len(lm.Beta[k]), k, want)
		}
		for lv := 0; lv < want; lv++ {
			if lm.Alpha[k][lv] <= 0 {
				return nil, fmt.Errorf("power: model alpha[%s][%d] = %v, want > 0", k, lv, lm.Alpha[k][lv])
			}
		}
	}
	return &lm, nil
}
