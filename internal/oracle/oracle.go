// Package oracle implements the paper's "static optimal" (SO) baseline: an
// offline sweep over every available system state that measures each state's
// actual performance and power (the paper's offline simulations), then picks
// the state with the best normalized performance per watt among those that
// satisfy the target. The chosen state is applied statically and the
// application runs under the Linux HMP scheduler (GTS), exactly as the
// paper's SO version does.
package oracle

import (
	"runtime"
	"sync"

	"repro/internal/gts"
	"repro/internal/heartbeat"
	"repro/internal/hmp"
	"repro/internal/power"
	"repro/internal/sim"
)

// Options configures the offline sweep.
type Options struct {
	Plat *hmp.Platform
	// Power is the ground-truth model standing in for the physical board.
	Power *power.GroundTruth
	// NewProgram builds a fresh instance of the application per probe run
	// (programs carry run state).
	NewProgram func() sim.Program
	// Target is the performance target the chosen state must satisfy.
	Target heartbeat.Target
	// Warmup is simulated time discarded before measuring; it must cover
	// any heartbeat-less startup phase of the application. Default 2 s.
	Warmup sim.Time
	// Measure is the simulated measurement window per state. Default 3 s.
	Measure sim.Time
	// FreqStride coarsens the frequency grids of the sweep (1 = full grid).
	FreqStride int
	// HBWindow is the heartbeat window size. Default 10.
	HBWindow int
	// Parallel runs probe simulations on all CPUs. Results are reduced in
	// state order, so the outcome is deterministic either way.
	Parallel bool
}

func (o Options) withDefaults() Options {
	if o.Warmup <= 0 {
		o.Warmup = 2 * sim.Second
	}
	if o.Measure <= 0 {
		o.Measure = 3 * sim.Second
	}
	if o.FreqStride < 1 {
		o.FreqStride = 1
	}
	if o.HBWindow <= 0 {
		o.HBWindow = 10
	}
	return o
}

// Result is the measured outcome of one state probe.
type Result struct {
	State    hmp.State
	Rate     float64 // measured heartbeat rate
	NormPerf float64
	PowerW   float64
	PP       float64 // normalized perf per watt
}

// Measure probes a single state: the application runs under GTS restricted
// to the state's cores and frequencies, and rate/power are measured after
// warmup.
func Measure(o Options, st hmp.State) Result {
	o = o.withDefaults()
	m := sim.New(o.Plat, sim.Config{Power: o.Power})
	m.SetLevel(hmp.Big, st.BigLevel)
	m.SetLevel(hmp.Little, st.LittleLevel)
	g := gts.New(o.Plat)
	g.SetAllowed(stateMask(o.Plat, st))
	m.SetPlacer(g)
	p := m.Spawn("probe", o.NewProgram(), o.HBWindow)
	m.Run(o.Warmup)
	e0, t0 := m.EnergyJ(), m.Now()
	m.Run(o.Measure)
	dt := sim.Seconds(m.Now() - t0)
	res := Result{
		State:  st,
		Rate:   p.HB.RateOver(t0, m.Now()),
		PowerW: (m.EnergyJ() - e0) / dt,
	}
	res.NormPerf = heartbeat.NormalizedPerf(o.Target, res.Rate)
	if res.PowerW > 0 {
		res.PP = res.NormPerf / res.PowerW
	}
	return res
}

// stateMask returns the cpuset of a state: the first C_L little and C_B big
// cores.
func stateMask(p *hmp.Platform, st hmp.State) hmp.CPUMask {
	var mask hmp.CPUMask
	for i := 0; i < st.LittleCores; i++ {
		mask = mask.Set(p.CPU(hmp.Little, i))
	}
	for i := 0; i < st.BigCores; i++ {
		mask = mask.Set(p.CPU(hmp.Big, i))
	}
	return mask
}

// FindStatic sweeps all states and returns the static optimal. The
// selection rule matches the runtime search: a state satisfying the target
// minimum beats any that does not; among satisfying states the best
// normalized-perf-per-watt wins; otherwise the highest rate wins.
func FindStatic(o Options) Result {
	o = o.withDefaults()
	states := hmp.AllStates(o.Plat, o.FreqStride)
	results := make([]Result, len(states))
	if o.Parallel {
		var wg sync.WaitGroup
		idx := make(chan int)
		workers := runtime.NumCPU()
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					results[i] = Measure(o, states[i])
				}
			}()
		}
		for i := range states {
			idx <- i
		}
		close(idx)
		wg.Wait()
	} else {
		for i, st := range states {
			results[i] = Measure(o, st)
		}
	}
	best := results[0]
	for _, r := range results[1:] {
		if betterResult(r, best, o.Target) {
			best = r
		}
	}
	return best
}

func betterResult(cand, best Result, tgt heartbeat.Target) bool {
	candOK := cand.Rate >= tgt.Min
	bestOK := best.Rate >= tgt.Min
	switch {
	case candOK && bestOK:
		return cand.PP > best.PP
	case candOK:
		return true
	case bestOK:
		return false
	default:
		return cand.Rate > best.Rate
	}
}
