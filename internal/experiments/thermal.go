package experiments

import (
	"fmt"

	"repro/internal/hmp"
	"repro/internal/scenario"
	"repro/internal/thermal"
	"repro/internal/workload"
)

// ThermalSweep runs the closed thermal loop across managers and governor
// aggressiveness levels on the parallel experiments engine: a saturating
// pulsed workload heats the clusters, the internal/thermal governor derives
// the DVFS ceilings from the RC model, and the report records how hot each
// configuration ran, how often it throttled, and what it cost in energy.
// The digests make regressions in the thermal reaction path visible as a
// diff, exactly as the scenario sweep pins the dynamic-event paths.
func ThermalSweep(e *Env) *Report {
	rep := &Report{Title: "Thermal sweep: closed-loop governor across trip points and managers"}
	rep.Table.Header = []string{
		"governor", "manager", "peak big (°C)", "peak little (°C)",
		"throttles", "trips", "releases", "energy (J)", "digest",
	}

	type cfg struct {
		name string
		spec thermal.Spec
	}
	governors := []cfg{
		{"aggressive (trip 65)", thermal.Spec{Enabled: true, ReleaseC: 55, ThrottleC: 60, TripC: 65}},
		{"default (trip 75)", thermal.Spec{Enabled: true}},
		{"conservative (trip 85)", thermal.Spec{Enabled: true, ReleaseC: 70, ThrottleC: 78, TripC: 85}},
	}
	managers := []string{scenario.ManagerNone, scenario.ManagerHARSE, scenario.ManagerMPHARSI}

	type row struct {
		gov string
		sc  *scenario.Scenario
		res *scenario.Result
		err error
	}
	rows := make([]row, 0, len(governors)*len(managers))
	for _, g := range governors {
		for _, mgr := range managers {
			spec := g.spec
			sc := &scenario.Scenario{
				Name:       fmt.Sprintf("thermal-%s", mgr),
				Manager:    mgr,
				DurationMS: 30000,
				AdaptEvery: 2,
				Apps: []scenario.AppSpec{{
					Name: "sw", Bench: "SW", Threads: 8, TargetFrac: 0.9,
					InitBig: scenario.IntPtr(2), InitLittle: scenario.IntPtr(2),
				}},
				// A pulsing workload phase (the every_ms growth of the
				// scenario format) heats and cools the clusters through the
				// hysteresis band instead of a flat ramp.
				Events: []scenario.Event{
					{AtMS: 2000, Kind: scenario.KindPhase, App: "sw", Scale: 1.6, EveryMS: 6000},
					{AtMS: 5000, Kind: scenario.KindPhase, App: "sw", Scale: 0.7, EveryMS: 6000},
				},
				Thermal: &spec,
			}
			rows = append(rows, row{gov: g.name, sc: sc})
		}
	}
	parallelFor(len(rows), func(i int) {
		rows[i].res, rows[i].err = scenario.Run(rows[i].sc, scenario.Options{
			Strict: true,
			MaxRate: func(short string, threads int) float64 {
				b, _ := workload.ByShort(short)
				return e.MaxRate(b)
			},
		})
	})
	for _, r := range rows {
		if r.err != nil {
			rep.Notes = append(rep.Notes, fmt.Sprintf("%s (%s): %v", r.sc.Name, r.sc.Manager, r.err))
			continue
		}
		gov := r.res.Thermal
		rep.Table.AddRow(
			r.gov, r.sc.Manager,
			fmt.Sprintf("%.1f", gov.PeakC(hmp.Big)),
			fmt.Sprintf("%.1f", gov.PeakC(hmp.Little)),
			fmt.Sprint(gov.Throttles()),
			fmt.Sprint(gov.Trips()),
			fmt.Sprint(gov.Releases()),
			fmt.Sprintf("%.1f", r.res.EnergyJ),
			fmt.Sprintf("%016x", r.res.TraceDigest),
		)
	}
	rep.Notes = append(rep.Notes,
		"ceilings derive from the internal/thermal RC model (no scripted dvfs_cap events); lower trip points throttle earlier and spend less energy",
		"digests are FNV-64a over the full per-sample trace (m/a/h lines); identical runs ⇒ identical digests")
	return rep
}
