package sim

import (
	"math"

	"repro/internal/hmp"
)

// Event-driven advancement: a Machine that provably has nothing to do can
// jump its clock to the next event instead of stepping tick by tick. The
// fast path is an execution strategy, not a semantic change — every state a
// later observer can see (clock, tick counters, energy accumulators, run
// queues, timers, trace bytes) is bit-for-bit what the equivalent sequence
// of Step calls would have produced. fleet.Fleet and the scenario engine
// build on this to jump whole quiescent fleets.

// Sleeper is the opt-in contract that lets a Daemon participate in
// event-driven advancement. NextWake returns the earliest future tick at
// which the daemon's Tick call is anything but a no-op; returning a time at
// or before m.Now() means "run me every tick" and disables the fast path.
//
// The contract is strict: if NextWake(m) returns w > m.Now(), then every
// skipped Tick invocation in (now, w) must have been a no-op — no machine
// mutation, no internal phase advance (a daemon that counts its own Tick
// calls must not implement Sleeper), no trace emission. NextWake itself
// must be pure. Daemons that do not implement Sleeper force full lockstep
// stepping of their machine, which is always correct.
type Sleeper interface {
	NextWake(m *Machine) Time
}

// QuiescentPlacer is the analogous opt-in for a Placer: Quiescent reports
// whether the next Place call is certain to be a pure no-op (no migrations,
// no internal phase advance, no trace events). Placers that keep per-call
// state (e.g. gts.Scheduler, whose migration pass fires on a count of Place
// invocations) must not implement it.
type QuiescentPlacer interface {
	Placer
	Quiescent(m *Machine) bool
}

// InertUntil returns the latest time ≤ limit up to which the machine can be
// fast-forwarded without any observable difference from per-tick stepping.
// A return of m.Now() means the machine is not inert and the next tick must
// run through Step. The bound is conservative: every "maybe" is a "no".
//
// A machine is inert when each per-tick phase is a certified no-op:
//
//   - fireTimers: no timer due (the first pending timer bounds the jump);
//   - Place: no runnable or misplaced threads, and the placer is a
//     QuiescentPlacer reporting quiescence (or nil);
//   - execute: nothing runnable and no stolen manager overhead, so the only
//     effect is execTick++ (replayed by FastForward);
//   - integratePower: the memo is warm and keyed exactly as integratePower
//     would key it (levels, online-core counts, all-zero tick utilisation),
//     so the tick adds the memoized lastE — replayed by FastForward;
//   - daemons: every daemon is a Sleeper whose wake time bounds the jump.
func (m *Machine) InertUntil(limit Time) Time {
	if limit <= m.now {
		return m.now
	}
	if len(m.runnable) != 0 || m.misplaced != 0 {
		return m.now
	}
	for i := range m.cores {
		if m.cores[i].stolen > 0 {
			return m.now
		}
	}
	if m.placer != nil {
		qp, ok := m.placer.(QuiescentPlacer)
		if !ok || !qp.Quiescent(m) {
			return m.now
		}
	}
	if m.cfg.Power != nil && !m.failed {
		// The energy memo must be warm and its key unchanged, mirroring
		// integratePower's `changed` computation: same level, same online
		// count, and a tick utilisation of zero everywhere (true on an idle
		// machine, where execute zeroes tickUse and nothing runs).
		for k := hmp.ClusterKind(0); k < hmp.NumClusters; k++ {
			if !m.powerValid[k] || m.levels[k] != m.lastLevel[k] {
				return m.now
			}
			online := m.plat.Clusters[k].Cores
			if m.opm != nil && m.online != m.allMask {
				online = m.OnlineCount(k)
			}
			if online != m.lastOnline[k] {
				return m.now
			}
			for _, tu := range m.lastTickUse[k] {
				if tu != 0 {
					return m.now
				}
			}
		}
	}
	until := limit
	if m.timers.Len() > 0 {
		at := m.timers.entries[0].at
		if at <= m.now {
			return m.now
		}
		if at < until {
			until = at
		}
	}
	for _, d := range m.daemons {
		s, ok := d.(Sleeper)
		if !ok {
			return m.now
		}
		w := s.NextWake(m)
		if w <= m.now {
			return m.now
		}
		if w < until {
			until = w
		}
	}
	return until
}

// FastForward replays the per-tick bookkeeping of an inert machine up to
// (exactly) until: the memoized per-cluster energy is accumulated in the
// same order and with the same float additions Step would have performed
// (no closed-form shortcut — repeated IEEE addition is not multiplication),
// and the clock, tick and execute counters advance tick by tick. The caller
// must have established inertness via InertUntil; FastForward itself does
// not re-check.
func (m *Machine) FastForward(until Time) { m.fastForward(until, nil) }

// FastForwardCached is FastForward consulting (and feeding) a JumpCache:
// bit-for-bit the same resulting state, with the replay loop skipped when
// the cache already holds this exact transition.
func (m *Machine) FastForwardCached(until Time, jc *JumpCache) { m.fastForward(until, jc) }

func (m *Machine) fastForward(until Time, jc *JumpCache) {
	d := until - m.now
	if d <= 0 {
		return
	}
	steps := int64((d + m.cfg.TickLen - 1) / m.cfg.TickLen) // ceil: RunUntil overshoots to the tick grid
	if m.cfg.Power != nil && !m.failed {
		if jc != nil {
			jc.apply(m, steps)
		} else {
			m.replayEnergy(steps)
		}
	}
	m.execTick += steps
	m.ticks += steps
	m.now += Time(steps) * m.cfg.TickLen
}

// replayEnergy performs the jump's energy accumulation: the float additions
// replay in registers, in exactly Step's order (per tick, clusters
// ascending, cluster accumulator then total); only the loop bookkeeping is
// hoisted.
func (m *Machine) replayEnergy(steps int64) {
	e := m.lastE
	c := m.clusterEnergyJ
	tot := m.energyJ
	for i := int64(0); i < steps; i++ {
		for k := 0; k < int(hmp.NumClusters); k++ {
			c[k] += e[k]
			tot += e[k]
		}
	}
	m.clusterEnergyJ = c
	m.energyJ = tot
}

// jumpCacheWays is the JumpCache associativity: enough that the handful of
// distinct machine shapes a worker sweeps per barrier (busy-adjacent, a few
// platform variants) coexist without evicting each other.
const jumpCacheWays = 4

// jumpKey identifies one energy-replay transition exactly: the starting
// accumulators and per-tick increments by bit pattern (distinguishing -0
// from +0, which IEEE addition does not treat identically), plus the step
// count.
type jumpKey struct {
	steps int64
	tot   uint64
	c     [hmp.NumClusters]uint64
	e     [hmp.NumClusters]uint64
}

type jumpEntry struct {
	ok  bool
	key jumpKey
	tot float64
	c   [hmp.NumClusters]float64
}

// JumpCache memoizes FastForward's replayed energy accumulation across
// machines and jumps. The replay is a pure function of the starting
// accumulator values, the per-tick increments, and the step count, so two
// machines in bit-identical power states — the common case in a large
// mostly-idle fleet, where every quiescent node evolves identically — need
// the O(steps) addition loop run only once; every other machine replays the
// memoized result, bit-for-bit. A cache is single-goroutine state: sharded
// fleet advancement gives each worker its own (hits only affect wall-clock,
// never results, so per-worker caching costs nothing in determinism).
type JumpCache struct {
	ents [jumpCacheWays]jumpEntry
	next int // round-robin eviction cursor
}

// NewJumpCache returns an empty cache.
func NewJumpCache() *JumpCache { return &JumpCache{} }

// apply advances m's energy accumulators by steps ticks of lastE, through
// the cache: a hit copies the memoized result, a miss runs the replay loop
// and memoizes it.
func (jc *JumpCache) apply(m *Machine, steps int64) {
	var key jumpKey
	key.steps = steps
	key.tot = math.Float64bits(m.energyJ)
	for k := 0; k < int(hmp.NumClusters); k++ {
		key.c[k] = math.Float64bits(m.clusterEnergyJ[k])
		key.e[k] = math.Float64bits(m.lastE[k])
	}
	for i := range jc.ents {
		if ent := &jc.ents[i]; ent.ok && ent.key == key {
			m.clusterEnergyJ = ent.c
			m.energyJ = ent.tot
			return
		}
	}
	m.replayEnergy(steps)
	jc.ents[jc.next] = jumpEntry{ok: true, key: key, tot: m.energyJ, c: m.clusterEnergyJ}
	jc.next = (jc.next + 1) % jumpCacheWays
}
