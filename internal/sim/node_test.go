package sim_test

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/hmp"
	"repro/internal/sim"
)

// TestNodeStepEqualsMachineStep pins the Node abstraction's core contract:
// stepping a node is bit-for-bit stepping its bare machine, and two nodes
// advanced in lockstep behave exactly like the same two machines advanced
// one after the other.
func TestNodeStepEqualsMachineStep(t *testing.T) {
	plat := hmp.Default()
	bare := sim.New(plat, sim.Config{})
	node := sim.NewNode(0, "n0", plat, sim.Config{})
	pb := bare.Spawn("s", &spinner{threads: 2, unit: 0.3, beats: true}, 4)
	pn := node.Spawn("s", &spinner{threads: 2, unit: 0.3, beats: true}, 4)

	// Lockstep: interleave node ticks with a second, independent node to
	// show shared-clock advancement does not perturb either machine.
	other := sim.NewNode(1, "n1", plat, sim.Config{})
	other.Spawn("o", &spinner{threads: 1, unit: 0.5, beats: true}, 4)
	for bare.Now() < 2*sim.Second {
		bare.Step()
		node.Step()
		other.Step()
	}
	if node.Now() != bare.Now() {
		t.Fatalf("clocks diverged: node %d, machine %d", node.Now(), bare.Now())
	}
	if pb.HB.Count() != pn.HB.Count() || pb.WorkDone() != pn.WorkDone() {
		t.Fatalf("node run diverged: beats %d/%d work %v/%v",
			pn.HB.Count(), pb.HB.Count(), pn.WorkDone(), pb.WorkDone())
	}
}

// TestNodeImplementsTicker pins the single-clock interface.
func TestNodeImplementsTicker(t *testing.T) {
	var _ sim.Ticker = sim.New(hmp.Default(), sim.Config{})
	var _ sim.Ticker = sim.NewNode(0, "n", hmp.Default(), sim.Config{})
}

// TestNodeTaggedTrace checks that events recorded through a node-attached
// tracer carry the node name and that the CSV gains the node column, while
// untagged tracers keep the historical header.
func TestNodeTaggedTrace(t *testing.T) {
	node := sim.NewNode(3, "edge-3", hmp.Default(), sim.Config{})
	tr := &sim.Tracer{}
	node.SetTracer(tr)
	if node.Tracer() != tr {
		t.Fatal("tracer not attached to the node's machine")
	}
	p := node.Spawn("s", &spinner{threads: 1, unit: 0.2, beats: true}, 4)
	p.SetAffinity(0, hmp.MaskOf(0))
	node.Run(1 * sim.Second)
	node.SetLevel(hmp.Big, 2)

	if len(tr.Events()) == 0 {
		t.Fatal("no events traced")
	}
	for _, e := range tr.Events() {
		if e.Node != "edge-3" {
			t.Fatalf("event %v missing node tag: %q", e.Kind, e.Node)
		}
	}
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(buf.String(), "\n")
	if !strings.HasSuffix(lines[0], ",node") {
		t.Fatalf("tagged CSV header missing node column: %q", lines[0])
	}
	if !strings.Contains(lines[1], ",edge-3") {
		t.Fatalf("tagged CSV row missing node: %q", lines[1])
	}

	// A tracer shared across two nodes attributes each event to the node
	// that emitted it (per-event stamping, not the tracer-level tag).
	a := sim.NewNode(0, "a", hmp.Default(), sim.Config{})
	b := sim.NewNode(1, "b", hmp.Default(), sim.Config{})
	shared := &sim.Tracer{}
	a.SetTracer(shared)
	b.SetTracer(shared)
	a.SetLevel(hmp.Big, 1)
	b.SetLevel(hmp.Big, 2)
	evs := shared.Events()
	if len(evs) != 2 || evs[0].Node != "a" || evs[1].Node != "b" {
		t.Fatalf("shared tracer misattributed events: %+v", evs)
	}

	// Untagged tracers keep the historical nine-column format.
	m := sim.New(hmp.Default(), sim.Config{})
	tr2 := &sim.Tracer{}
	m.SetTracer(tr2)
	m.SetLevel(hmp.Big, 1)
	var buf2 bytes.Buffer
	if err := tr2.WriteCSV(&buf2); err != nil {
		t.Fatal(err)
	}
	if h := strings.Split(buf2.String(), "\n")[0]; h != "time_us,kind,proc,thread,from,to,cluster,khz,temp_c" {
		t.Fatalf("untagged CSV header changed: %q", h)
	}
}
