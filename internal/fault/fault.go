// Package fault is the seeded, deterministic fault-injection and recovery
// layer: it defines the scenario `faults` block (scripted and seeded-random
// node crashes, permanent core failures, transient checkpoint-transfer
// failures), expands the random fault timeline as a pure function of the
// seed, and provides the runtime mechanisms the fleet scheduler composes —
// a heartbeat-timeout failure detector and a capped exponential backoff
// with jittered-but-seeded retry delays.
//
// Everything here is deterministic: two runs of the same spec produce the
// same crashes at the same ticks, the same retry delays, and the same
// transfer-failure outcomes, so fault scenarios replay byte-identically.
package fault

import (
	"fmt"
	"math/rand"
)

// Defaults applied by Runtime when the spec leaves a knob zero.
const (
	DefaultHeartbeatTimeoutMS = 300
	DefaultCheckpointEveryMS  = 1000
	DefaultRetryBaseMS        = 50
	DefaultRetryMaxMS         = 2000
	DefaultRetryJitterMS      = 25
	DefaultRandomDownMS       = 2000
	DefaultRandomMaxCrashes   = 16

	// MaxCrashes bounds the total expanded crash timeline (scripted plus
	// random), mirroring the scenario layer's occurrence cap.
	MaxCrashes = 1000
)

// Spec is the scenario `faults` block. All fields are optional; the zero
// value injects no faults but still arms the recovery machinery (detector,
// background checkpoints, retry state) with its defaults.
type Spec struct {
	// Seed drives every random draw the fault layer makes: the random crash
	// timeline, transfer-failure coin flips, and retry jitter each use a
	// stream derived from it. Zero is a valid seed.
	Seed int64 `json:"seed,omitempty"`

	// HeartbeatTimeoutMS is how long a node must stay silent before the
	// fleet detector declares it failed. Default 300 ms.
	HeartbeatTimeoutMS int64 `json:"heartbeat_timeout_ms,omitempty"`

	// CheckpointEveryMS is the background snapshot cadence: work lost on a
	// crash is bounded by this interval. Default 1000 ms; negative disables
	// background checkpoints (crashed apps then restart from scratch).
	CheckpointEveryMS int64 `json:"checkpoint_every_ms,omitempty"`

	// TransferFailProb is the probability that restoring a checkpoint onto
	// a node fails transiently (the transfer, not the node), in [0, 1).
	TransferFailProb float64 `json:"transfer_fail_prob,omitempty"`

	// RetryBaseMS/RetryMaxMS/RetryJitterMS shape the capped exponential
	// backoff applied after a failed transfer: attempt n waits
	// min(base·2ⁿ⁻¹, max) plus a seeded jitter in [0, jitter].
	// Defaults 50 / 2000 / 25 ms.
	RetryBaseMS   int64 `json:"retry_base_ms,omitempty"`
	RetryMaxMS    int64 `json:"retry_max_ms,omitempty"`
	RetryJitterMS int64 `json:"retry_jitter_ms,omitempty"`

	// Crashes are scripted node crashes.
	Crashes []Crash `json:"crashes,omitempty"`

	// CoreFailures are scripted permanent core failures: the core goes
	// offline at the given time and never comes back (a node crash and
	// recovery does not revive it).
	CoreFailures []CoreFailure `json:"core_failures,omitempty"`

	// Random, when present, adds a seeded-random crash process on top of
	// the scripted timeline.
	Random *RandomCrashes `json:"random,omitempty"`
}

// Crash is one scripted node crash.
type Crash struct {
	// Node names the crashing node (scenario `nodes` entry).
	Node string `json:"node"`
	// AtMS is the crash time.
	AtMS int64 `json:"at_ms"`
	// DownMS is how long the node stays down; 0 means it never recovers.
	DownMS int64 `json:"down_ms,omitempty"`
}

// CoreFailure is one scripted permanent core failure.
type CoreFailure struct {
	Node string `json:"node"`
	AtMS int64  `json:"at_ms"`
	// CPU is the failing core's global CPU number on the node's platform.
	CPU int `json:"cpu"`
}

// RandomCrashes is a seeded Poisson crash process over the whole fleet:
// crashes arrive with exponential inter-arrival times at the given rate,
// each hitting a uniformly drawn node.
type RandomCrashes struct {
	// RatePerMin is the mean number of crashes per minute, fleet-wide.
	RatePerMin float64 `json:"rate_per_min"`
	// DownMS is how long each random crash keeps its node down
	// (default 2000 ms).
	DownMS int64 `json:"down_ms,omitempty"`
	// MaxCrashes caps the expanded random timeline (default 16, hard cap
	// shared with the scripted timeline).
	MaxCrashes int `json:"max_crashes,omitempty"`
}

// Validate checks the spec's internal consistency (reference checks — node
// names, CPU ranges — are the embedding scenario's job, which knows the
// fleet topology). durationMS is the run length fault times must fall in.
func (s *Spec) Validate(durationMS int64) error {
	if s.HeartbeatTimeoutMS < 0 {
		return fmt.Errorf("faults: negative heartbeat_timeout_ms %d", s.HeartbeatTimeoutMS)
	}
	if s.TransferFailProb < 0 || s.TransferFailProb >= 1 {
		return fmt.Errorf("faults: transfer_fail_prob %v outside [0, 1)", s.TransferFailProb)
	}
	if s.RetryBaseMS < 0 || s.RetryMaxMS < 0 || s.RetryJitterMS < 0 {
		return fmt.Errorf("faults: negative retry backoff parameter")
	}
	if s.RetryBaseMS > 0 && s.RetryMaxMS > 0 && s.RetryBaseMS > s.RetryMaxMS {
		return fmt.Errorf("faults: retry_base_ms %d exceeds retry_max_ms %d", s.RetryBaseMS, s.RetryMaxMS)
	}
	// A crash must stay down longer than the heartbeat timeout (or forever):
	// the crash kills the node's processes, so a blip the detector cannot
	// see would strand its applications undetectably.
	timeoutMS := s.HeartbeatTimeoutMS
	if timeoutMS == 0 {
		timeoutMS = DefaultHeartbeatTimeoutMS
	}
	for i, c := range s.Crashes {
		if c.Node == "" {
			return fmt.Errorf("faults: crash %d names no node", i)
		}
		if c.AtMS < 0 || c.AtMS > durationMS {
			return fmt.Errorf("faults: crash %d at %d ms outside run of %d ms", i, c.AtMS, durationMS)
		}
		if c.DownMS < 0 {
			return fmt.Errorf("faults: crash %d has negative down_ms", i)
		}
		if c.DownMS > 0 && c.DownMS <= timeoutMS {
			return fmt.Errorf("faults: crash %d down_ms %d not above the heartbeat timeout %d ms (the crash would be undetectable)",
				i, c.DownMS, timeoutMS)
		}
	}
	for i, cf := range s.CoreFailures {
		if cf.Node == "" {
			return fmt.Errorf("faults: core failure %d names no node", i)
		}
		if cf.AtMS < 0 || cf.AtMS > durationMS {
			return fmt.Errorf("faults: core failure %d at %d ms outside run of %d ms", i, cf.AtMS, durationMS)
		}
		if cf.CPU < 0 {
			return fmt.Errorf("faults: core failure %d has negative cpu", i)
		}
	}
	if r := s.Random; r != nil {
		if r.RatePerMin < 0 {
			return fmt.Errorf("faults: negative random crash rate %v", r.RatePerMin)
		}
		if r.DownMS < 0 {
			return fmt.Errorf("faults: negative random down_ms %d", r.DownMS)
		}
		downMS := r.DownMS
		if downMS == 0 {
			downMS = DefaultRandomDownMS
		}
		if downMS <= timeoutMS {
			return fmt.Errorf("faults: random down_ms %d not above the heartbeat timeout %d ms (the crashes would be undetectable)",
				downMS, timeoutMS)
		}
		if r.MaxCrashes < 0 || r.MaxCrashes > MaxCrashes {
			return fmt.Errorf("faults: random max_crashes %d outside [0, %d]", r.MaxCrashes, MaxCrashes)
		}
	}
	if n := len(s.Crashes) + len(s.CoreFailures); n > MaxCrashes {
		return fmt.Errorf("faults: %d scripted faults exceed the cap of %d", n, MaxCrashes)
	}
	return nil
}

// ExpandedCrash is one crash in the fully expanded timeline, with the
// target resolved to a node index.
type ExpandedCrash struct {
	Node   int // fleet node index
	AtMS   int64
	DownMS int64 // 0 = never recovers
}

// ExpandRandom expands the seeded-random crash process deterministically:
// exponential inter-arrival gaps at RatePerMin, each crash hitting a
// uniformly drawn node. A nil receiver, a zero rate, or an empty fleet
// yields no crashes and consumes no random draws. The stream is a pure
// function of (seed, durationMS, nodes).
func (r *RandomCrashes) ExpandRandom(seed, durationMS int64, nodes int) []ExpandedCrash {
	if r == nil || r.RatePerMin <= 0 || nodes <= 0 || durationMS <= 0 {
		return nil
	}
	max := r.MaxCrashes
	if max <= 0 {
		max = DefaultRandomMaxCrashes
	}
	down := r.DownMS
	if down <= 0 {
		down = DefaultRandomDownMS
	}
	meanGapMS := 60_000 / r.RatePerMin
	rng := rand.New(rand.NewSource(seed))
	var out []ExpandedCrash
	at := 0.0
	for len(out) < max {
		at += rng.ExpFloat64() * meanGapMS
		ms := int64(at)
		if ms >= durationMS {
			break
		}
		out = append(out, ExpandedCrash{
			Node:   rng.Intn(nodes),
			AtMS:   ms,
			DownMS: down,
		})
	}
	return out
}
