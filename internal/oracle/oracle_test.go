package oracle_test

import (
	"testing"

	"repro/internal/heartbeat"
	"repro/internal/hmp"
	"repro/internal/oracle"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/workload"
)

func opts(t *testing.T, bigFactor float64) oracle.Options {
	t.Helper()
	plat := hmp.Default()
	return oracle.Options{
		Plat:  plat,
		Power: power.DefaultGroundTruth(plat),
		NewProgram: func() sim.Program {
			return &workload.DataParallel{
				AppName: "probe", Threads: 8,
				BigFactor: bigFactor,
				Unit:      workload.ConstUnit(0.5),
			}
		},
		Warmup:     1 * sim.Second,
		Measure:    2 * sim.Second,
		FreqStride: 2,
		Parallel:   true,
	}
}

func TestMeasureMaxState(t *testing.T) {
	o := opts(t, 1.5)
	o.Target = heartbeat.Target{Min: 1, Avg: 2, Max: 3}
	r := oracle.Measure(o, hmp.MaxState(o.Plat))
	if r.Rate <= 0 {
		t.Fatal("no rate measured at max state")
	}
	if r.PowerW <= 0 {
		t.Fatal("no power measured")
	}
	if r.NormPerf != 1 {
		t.Errorf("max state should overachieve a low target: norm = %v", r.NormPerf)
	}
}

func TestFindStaticSatisfiesTarget(t *testing.T) {
	o := opts(t, 1.5)
	// Calibrate against the max state, then target half of it.
	probe := oracle.Measure(o, hmp.MaxState(o.Plat))
	o.Target = heartbeat.TargetAround(probe.Rate, 0.5, 0.05)
	best := oracle.FindStatic(o)
	if best.Rate < o.Target.Min {
		t.Fatalf("static optimal rate %v misses target min %v", best.Rate, o.Target.Min)
	}
	// It must be much more efficient than the max state.
	maxPP := heartbeat.NormalizedPerf(o.Target, probe.Rate) / probe.PowerW
	if best.PP <= maxPP {
		t.Fatalf("static optimal PP %v not better than max-state PP %v", best.PP, maxPP)
	}
	if best.State == hmp.MaxState(o.Plat) {
		t.Error("static optimal should not be the max state for a 50% target")
	}
}

func TestFindStaticPrefersLittleForFlatWorkload(t *testing.T) {
	// With BigFactor = 1.0 (blackscholes), big cores burn more power for no
	// speedup: the oracle must lean on the little cluster, using all of it
	// and at most a couple of floor-frequency big cores.
	o := opts(t, 1.0)
	probe := oracle.Measure(o, hmp.MaxState(o.Plat))
	o.Target = heartbeat.TargetAround(probe.Rate, 0.5, 0.05)
	best := oracle.FindStatic(o)
	if best.State.LittleCores < 3 || best.State.BigCores > best.State.LittleCores {
		t.Fatalf("oracle should be little-dominant for an r=1.0 workload, got %+v", best.State)
	}
	if best.State.BigCores > 0 && best.State.BigLevel > 2 {
		t.Fatalf("any big cores must idle near the frequency floor, got %+v", best.State)
	}
}

func TestFindStaticDeterministicAcrossParallelism(t *testing.T) {
	o := opts(t, 1.5)
	o.FreqStride = 3
	o.Target = heartbeat.Target{Min: 2, Avg: 2.5, Max: 3}
	o.Parallel = true
	a := oracle.FindStatic(o)
	o.Parallel = false
	b := oracle.FindStatic(o)
	if a.State != b.State {
		t.Fatalf("parallel %v vs serial %v", a.State, b.State)
	}
}

func TestUnsatisfiableTargetPicksFastest(t *testing.T) {
	o := opts(t, 1.5)
	o.FreqStride = 3
	o.Measure = 8 * sim.Second
	o.Target = heartbeat.Target{Min: 1e6, Avg: 2e6, Max: 3e6}
	best := oracle.FindStatic(o)
	// Must pick a state whose measured rate is at the top of the sweep
	// (beat-count quantization can make near-max states tie with max).
	maxRate := oracle.Measure(o, hmp.MaxState(o.Plat)).Rate
	if best.Rate < maxRate*0.85 {
		t.Fatalf("unsatisfiable target picked rate %v, max-state rate %v (state %+v)",
			best.Rate, maxRate, best.State)
	}
}
