package scenario

import (
	"bufio"
	"fmt"
	"hash/fnv"
	"io"
	"sort"

	"repro/internal/core"
	"repro/internal/gts"
	"repro/internal/heartbeat"
	"repro/internal/hmp"
	"repro/internal/mphars"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/thermal"
	"repro/internal/workload"
)

// Options configures a scenario run. The zero value selects the default
// platform, the ground-truth power model, the synthetic linear estimator
// model, engine-local max-rate calibration, and no trace output.
type Options struct {
	Plat  *hmp.Platform      // default hmp.Default()
	Power sim.PowerModel     // machine power model; default power.DefaultGroundTruth
	Model *power.LinearModel // manager estimator model; default DefaultModel

	// MaxRate resolves a benchmark's maximum achievable heartbeat rate for
	// fractional targets. Nil selects an engine-local calibration run per
	// (bench, threads) pair (deterministic, cached for the run).
	MaxRate func(short string, threads int) float64

	// Trace, when non-nil, receives the per-sample metric trace (see the
	// package comment). The trace is also folded into Result.TraceDigest
	// whether or not it is written anywhere.
	Trace io.Writer

	// PerTick, when non-nil, runs as a machine daemon every tick before the
	// managers; property tests install invariant checkers here.
	PerTick func(*sim.Machine)

	// Strict makes the engine verify runtime invariants after every applied
	// action and every trace sample — no runnable thread on an offline
	// core, cluster levels within their ceilings, and (for mphars-*) the
	// partitioning invariants — returning an error on the first violation.
	// Property tests run with Strict on.
	Strict bool
}

// AppResult summarizes one application after the run.
type AppResult struct {
	Name       string
	Beats      int64
	Work       float64
	Migrations int
	Arrived    bool // the arrival fired (always true once start_ms passed)
	Departed   bool // the departure fired
	Skipped    bool // MP-HARS had no free core at arrival; app never spawned
}

// Result is the outcome of one scenario run.
type Result struct {
	Scenario *Scenario
	Machine  *sim.Machine
	Apps     []AppResult

	EnergyJ     float64
	OverheadUS  sim.Time
	Samples     int
	TraceDigest uint64 // FNV-64a over the emitted trace bytes

	// MP is the MP-HARS manager of mphars-* scenarios (nil otherwise);
	// Managers maps app name → single-application HARS manager for hars-*
	// scenarios. Tests use these for consistency checks.
	MP       *mphars.Manager
	Managers map[string]*core.Manager

	// Thermal is the closed-loop governor of thermal-enabled scenarios
	// (nil otherwise): peak temperatures and throttle statistics live here.
	Thermal *thermal.Governor
}

// DefaultModel returns the synthetic linear power model handed to the
// managers' estimators when Options.Model is nil — the same fixture the
// repository's golden-digest tests use (power.SyntheticLinearModel), so
// event-free scenario runs are bit-identical to the direct-run path.
func DefaultModel(plat *hmp.Platform) *power.LinearModel {
	return power.SyntheticLinearModel(plat)
}

// action ordering priorities at equal timestamps (see the package comment).
const (
	prioPlatform = iota
	prioDepart
	prioArrive
	prioAppEvent
)

type action struct {
	at   sim.Time
	prio int
	seq  int
	ev   *Event  // platform and app events
	app  *appRun // arrivals and departures
}

// appRun is the engine's per-application state.
type appRun struct {
	spec *AppSpec
	prog sim.Program
	proc *sim.Process
	mgr  *core.Manager // hars-* scenarios
	res  AppResult
}

type daemonFunc func(*sim.Machine)

func (f daemonFunc) Tick(m *sim.Machine) { f(m) }

// engine carries one run's state.
type engine struct {
	sc    *Scenario
	opts  Options
	plat  *hmp.Platform
	model *power.LinearModel
	m     *sim.Machine
	mp    *mphars.Manager
	gov   *thermal.Governor
	apps  []*appRun

	rates map[string]float64 // max-rate cache: "short/threads"
	trace *bufio.Writer
	out   io.Writer // trace sink: the digest hash, plus Options.Trace if set
	hash  interface {
		io.Writer
		Sum64() uint64
	}
	samples int
}

// Run executes the scenario and returns its result. The run is fully
// deterministic: the same scenario and options always produce the same
// result and byte-identical trace output.
func Run(sc *Scenario, opts Options) (*Result, error) {
	plat := opts.Plat
	if plat == nil {
		plat = hmp.Default()
	}
	if err := sc.ValidateOn(plat); err != nil {
		return nil, err
	}
	pm := opts.Power
	if pm == nil {
		pm = power.DefaultGroundTruth(plat)
	}
	model := opts.Model
	if model == nil {
		model = DefaultModel(plat)
	}
	e := &engine{
		sc: sc, opts: opts, plat: plat, model: model,
		m:     sim.New(plat, sim.Config{Power: pm}),
		rates: make(map[string]float64),
		hash:  fnv.New64a(),
	}
	out := io.Writer(e.hash)
	if opts.Trace != nil {
		e.trace = bufio.NewWriter(opts.Trace)
		out = io.MultiWriter(e.hash, e.trace)
	}
	e.out = out

	switch sc.Manager {
	case ManagerGTS:
		e.m.SetPlacer(gts.New(plat))
	case ManagerMPHARSI, ManagerMPHARSE:
		v := mphars.MPHARSI
		if sc.Manager == ManagerMPHARSE {
			v = mphars.MPHARSE
		}
		e.mp = mphars.New(e.m, model, mphars.Config{
			Version:     v,
			AdaptEvery:  sc.AdaptEvery,
			OverheadCPU: sc.OverheadCPU,
		})
	}
	// The thermal governor runs first among the daemons: PerTick observers
	// see its post-actuation state for the tick, and a ceiling moved this
	// tick is visible to MP-HARS's same-tick ReconcilePlatform and to the
	// HARS managers' next bounds clamp.
	if sc.Thermal != nil && sc.Thermal.Enabled {
		gov, err := thermal.NewGovernor(*sc.Thermal)
		if err != nil {
			return nil, err
		}
		e.gov = gov
		e.m.AddDaemon(gov)
	}
	if opts.PerTick != nil {
		e.m.AddDaemon(daemonFunc(opts.PerTick))
	}
	if e.mp != nil {
		e.m.AddDaemon(e.mp)
	}

	for i := range sc.Apps {
		e.apps = append(e.apps, &appRun{
			spec: &sc.Apps[i],
			res:  AppResult{Name: sc.Apps[i].Name},
		})
	}
	actions := e.buildActions()

	fmt.Fprintf(out, "# scenario %s seed %d manager %s\n", sc.Name, sc.Seed, sc.Manager)
	fmt.Fprintln(out, "# m,t_ms,online,big_level,little_level,big_cap,little_cap,energy,overhead_us")
	fmt.Fprintln(out, "# a,t_ms,app,beats,rate,work,migrations")
	if e.gov != nil {
		fmt.Fprintln(out, "# h,t_ms,big_temp,little_temp,big_cap,little_cap,throttles,releases")
	}

	end := sim.Time(sc.DurationMS) * sim.Millisecond
	every := sim.Time(sc.SampleEveryMS) * sim.Millisecond
	if every <= 0 {
		every = 100 * sim.Millisecond
	}
	nextSample := sim.Time(0)
	ai := 0
	for {
		for ai < len(actions) && actions[ai].at <= e.m.Now() {
			e.apply(actions[ai])
			if opts.Strict {
				if err := e.checkStrict(); err != nil {
					return nil, err
				}
			}
			ai++
		}
		if e.m.Now() >= nextSample {
			e.sample()
			nextSample += every
			if opts.Strict {
				if err := e.checkStrict(); err != nil {
					return nil, err
				}
			}
		}
		if e.m.Now() >= end {
			break
		}
		next := end
		if ai < len(actions) && actions[ai].at < next {
			next = actions[ai].at
		}
		if nextSample < next {
			next = nextSample
		}
		e.m.RunUntil(next)
	}
	if e.trace != nil {
		if err := e.trace.Flush(); err != nil {
			return nil, fmt.Errorf("scenario: trace: %w", err)
		}
	}

	res := &Result{
		Scenario:    sc,
		Machine:     e.m,
		EnergyJ:     e.m.EnergyJ(),
		OverheadUS:  e.m.Overhead(),
		Samples:     e.samples,
		TraceDigest: e.hash.Sum64(),
		MP:          e.mp,
		Thermal:     e.gov,
	}
	for _, a := range e.apps {
		if a.proc != nil {
			a.res.Beats = a.proc.HB.Count()
			a.res.Work = a.proc.WorkDone()
			for _, t := range a.proc.Threads {
				a.res.Migrations += t.Migrations()
			}
		}
		res.Apps = append(res.Apps, a.res)
	}
	if res.Managers == nil && isHARS(sc.Manager) {
		res.Managers = make(map[string]*core.Manager)
		for _, a := range e.apps {
			if a.mgr != nil {
				res.Managers[a.res.Name] = a.mgr
			}
		}
	}
	return res, nil
}

func isHARS(mgr string) bool {
	return mgr == ManagerHARSI || mgr == ManagerHARSE || mgr == ManagerHARSEI
}

// buildActions folds arrivals, departures, and events into one ordered
// timeline.
func (e *engine) buildActions() []action {
	var out []action
	seq := 0
	for _, a := range e.apps {
		out = append(out, action{
			at: sim.Time(a.spec.StartMS) * sim.Millisecond, prio: prioArrive, seq: seq, app: a,
		})
		seq++
		if a.spec.StopMS > 0 {
			out = append(out, action{
				at: sim.Time(a.spec.StopMS) * sim.Millisecond, prio: prioDepart, seq: seq, app: a,
			})
			seq++
		}
	}
	for i := range e.sc.Events {
		ev := &e.sc.Events[i]
		prio := prioAppEvent
		if ev.Kind == KindHotplug || ev.Kind == KindDVFSCap {
			prio = prioPlatform
		}
		// A repeating event expands into one action per occurrence; they
		// all share the event's sequence number, so same-time ties between
		// different events still break by position in the file.
		for _, at := range ev.Occurrences(e.sc.DurationMS) {
			out = append(out, action{
				at: sim.Time(at) * sim.Millisecond, prio: prio, seq: seq, ev: ev,
			})
		}
		seq++
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].at != out[j].at {
			return out[i].at < out[j].at
		}
		if out[i].prio != out[j].prio {
			return out[i].prio < out[j].prio
		}
		return out[i].seq < out[j].seq
	})
	return out
}

// apply executes one due action.
func (e *engine) apply(act action) {
	switch {
	case act.app != nil && act.prio == prioArrive:
		e.arrive(act.app)
	case act.app != nil && act.prio == prioDepart:
		e.depart(act.app)
	default:
		e.event(act.ev)
	}
}

func (e *engine) arrive(a *appRun) {
	a.res.Arrived = true
	b, _ := workload.ByShort(a.spec.Bench)
	threads := a.spec.Threads
	if threads <= 0 {
		threads = 8
	}
	window := a.spec.HBWindow
	if window <= 0 {
		window = 10
	}
	tgt := e.target(a.spec.Target, a.spec.TargetFrac, a.spec.Bench, threads)

	if e.mp != nil {
		// MP-HARS owns the core partition: an arrival with no free core
		// anywhere is skipped (never spawned) instead of trampling other
		// applications' partitions.
		e.mp.ReconcilePlatform(e.m)
		freeB, freeL := e.mp.FreeCores(hmp.Big), e.mp.FreeCores(hmp.Little)
		if freeB+freeL == 0 {
			a.res.Skipped = true
			return
		}
		initB := minInt(intOr(a.spec.InitBig, 1), freeB)
		initL := minInt(intOr(a.spec.InitLittle, 1), freeL)
		if initB+initL == 0 {
			if freeL > 0 {
				initL = 1
			} else {
				initB = 1
			}
		}
		a.prog = b.New(threads)
		a.proc = e.m.Spawn(a.spec.Name, a.prog, window)
		e.mp.Register(e.m, a.proc, tgt, initB, initL)
		return
	}

	a.prog = b.New(threads)
	a.proc = e.m.Spawn(a.spec.Name, a.prog, window)
	switch e.sc.Manager {
	case ManagerHARSI, ManagerHARSE, ManagerHARSEI:
		v := core.HARSI
		switch e.sc.Manager {
		case ManagerHARSE:
			v = core.HARSE
		case ManagerHARSEI:
			v = core.HARSEI
		}
		// Start from the maximum state the *current* platform supports, so
		// an arrival after hotplug or capping begins inside bounds.
		st := hmp.MaxState(e.plat)
		bd := core.MachineBounds(e.m)
		st.BigCores = minInt(st.BigCores, bd.MaxBigCores)
		st.LittleCores = minInt(st.LittleCores, bd.MaxLittleCores)
		st.BigLevel = minInt(st.BigLevel, bd.BigLevelCap-1)
		st.LittleLevel = minInt(st.LittleLevel, bd.LittleLevelCap-1)
		a.mgr = core.NewManager(e.m, a.proc, e.model, tgt, core.Config{
			Version:     v,
			AdaptEvery:  e.sc.AdaptEvery,
			OverheadCPU: e.sc.OverheadCPU,
			InitState:   &st,
		})
		e.m.AddDaemon(a.mgr)
	default:
		a.proc.HB.SetTarget(tgt)
	}
}

func (e *engine) depart(a *appRun) {
	if a.proc == nil || a.res.Departed {
		return
	}
	a.res.Departed = true
	if e.mp != nil {
		e.mp.Unregister(e.m, a.proc)
	}
	if a.mgr != nil {
		e.m.RemoveDaemon(a.mgr)
	}
	e.m.Kill(a.proc)
}

func (e *engine) event(ev *Event) {
	switch ev.Kind {
	case KindHotplug:
		e.m.SetCoreOnline(ev.CPU, *ev.Online)
		if e.mp != nil {
			e.mp.ReconcilePlatform(e.m)
		}
	case KindDVFSCap:
		k, _ := parseCluster(ev.Cluster)
		e.m.SetLevelCap(k, ev.MaxLevel)
		if e.mp != nil {
			e.mp.ReconcilePlatform(e.m)
		}
	case KindTarget:
		a := e.appByName(ev.App)
		if a == nil || a.proc == nil || a.res.Departed {
			return
		}
		tgt := e.target(ev.Target, ev.Frac, a.spec.Bench, threadsOf(a))
		switch {
		case a.mgr != nil:
			a.mgr.SetTarget(tgt)
		case e.mp != nil:
			e.mp.SetTarget(a.proc, tgt)
		default:
			a.proc.HB.SetTarget(tgt)
		}
	case KindPhase:
		a := e.appByName(ev.App)
		if a == nil || a.prog == nil || a.res.Departed {
			return
		}
		if ps, ok := a.prog.(workload.PhaseScalable); ok {
			ps.SetPhaseScale(ev.Scale)
		}
	}
}

func (e *engine) appByName(name string) *appRun {
	for _, a := range e.apps {
		if a.spec.Name == name {
			return a
		}
	}
	return nil
}

func threadsOf(a *appRun) int {
	if a.spec.Threads > 0 {
		return a.spec.Threads
	}
	return 8
}

// target resolves a target spec: explicit band, or frac of the benchmark's
// maximum rate with the paper's ±5% band.
func (e *engine) target(explicit *TargetSpec, frac float64, bench string, threads int) heartbeat.Target {
	if explicit != nil {
		return heartbeat.Target{Min: explicit.Min, Avg: explicit.Avg, Max: explicit.Max}
	}
	if frac <= 0 {
		frac = 0.5
	}
	return heartbeat.TargetAround(e.maxRate(bench, threads), frac, 0.05)
}

// maxRate measures (and caches) a benchmark's maximum achievable heartbeat
// rate: a short unmanaged run under the GTS scheduler at the platform
// maximum, mirroring the experiments environment's calibration.
func (e *engine) maxRate(bench string, threads int) float64 {
	key := fmt.Sprintf("%s/%d", bench, threads)
	if r, ok := e.rates[key]; ok {
		return r
	}
	var r float64
	if e.opts.MaxRate != nil {
		r = e.opts.MaxRate(bench, threads)
	} else {
		b, _ := workload.ByShort(bench)
		cm := sim.New(e.plat, sim.Config{})
		cm.SetPlacer(gts.New(e.plat))
		p := cm.Spawn(b.Name, b.New(threads), 10)
		cm.Run(20 * sim.Second)
		r = p.HB.RateOver(8*sim.Second, cm.Now())
	}
	e.rates[key] = r
	return r
}

// sample emits one trace sample: a machine line plus one line per spawned
// application. Floats are rendered with %x so the trace is exact and
// byte-stable.
func (e *engine) sample() {
	e.samples++
	tms := e.m.Now() / sim.Millisecond
	fmt.Fprintf(e.out, "m,%d,%x,%d,%d,%d,%d,%x,%d\n",
		tms, uint64(e.m.OnlineMask()),
		e.m.Level(hmp.Big), e.m.Level(hmp.Little),
		e.m.LevelCap(hmp.Big), e.m.LevelCap(hmp.Little),
		e.m.EnergyJ(), e.m.Overhead())
	if e.gov != nil {
		fmt.Fprintf(e.out, "h,%d,%x,%x,%d,%d,%d,%d\n",
			tms, e.gov.TempC(hmp.Big), e.gov.TempC(hmp.Little),
			e.m.LevelCap(hmp.Big), e.m.LevelCap(hmp.Little),
			e.gov.Throttles(), e.gov.Releases())
	}
	for _, a := range e.apps {
		if a.proc == nil {
			continue
		}
		rate := 0.0
		if rec, ok := a.proc.HB.Latest(); ok {
			rate = rec.WindowRate
		}
		mig := 0
		for _, t := range a.proc.Threads {
			mig += t.Migrations()
		}
		fmt.Fprintf(e.out, "a,%d,%s,%d,%x,%x,%d\n",
			tms, a.spec.Name, a.proc.HB.Count(), rate, a.proc.WorkDone(), mig)
	}
}

// checkStrict verifies the run-time invariants Strict mode promises.
func (e *engine) checkStrict() error {
	for _, t := range e.m.Threads() {
		if t.Runnable() && t.Core() >= 0 && !e.m.CoreOnline(t.Core()) {
			return fmt.Errorf("scenario: t=%d: runnable thread %s/%d on offline cpu %d",
				e.m.Now(), t.Proc.Name, t.Local, t.Core())
		}
	}
	for k := hmp.ClusterKind(0); k < hmp.NumClusters; k++ {
		if e.m.Level(k) > e.m.LevelCap(k) {
			return fmt.Errorf("scenario: t=%d: cluster %s at level %d above ceiling %d",
				e.m.Now(), k, e.m.Level(k), e.m.LevelCap(k))
		}
	}
	if e.mp != nil {
		if err := e.mp.CheckInvariants(); err != nil {
			return fmt.Errorf("scenario: t=%d: %w", e.m.Now(), err)
		}
	}
	return nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
