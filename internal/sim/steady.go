package sim

import "repro/internal/hmp"

// Steady-phase advancement: the busy-machine counterpart of InertUntil/
// FastForward. A machine whose runnable threads are all mid-unit — nothing
// completes, nothing migrates, nothing actuates — repeats the same tick over
// and over, differing only in the float accumulators. SteadyUntil certifies
// a window in which that repetition is provable, and RunSteady executes it
// as a tight loop: per-tick progress accrual and the memoized energy
// additions in registers, the same IEEE operations in the same order as the
// general path, skipping the runnable scan, placer dispatch, daemon walk,
// and trace checks that are provably no-ops. Like FastForward, this is an
// execution strategy, not a semantic change — every observable state is
// bit-for-bit what the equivalent sequence of Step calls would produce, and
// the general per-tick loop survives as the reference the golden digests and
// the steady-vs-general property suite pin it to.

// SteadyTicker is the per-tick half of a SteadyDaemon whose Tick calls
// inside a certified window are internal-only (they advance daemon state —
// an integrator, a counter — without touching the machine). SteadyTick is
// called once per window tick before the tick's effects are applied; it must
// be pure apart from private scratch (state no later call observes) and
// report whether the daemon's next Tick would stay internal-only: returning
// false ends the window at that tick, which then runs through the general
// Step. SteadyAdvance then replays exactly the internal effects one Tick
// would have had; it runs only after every planned check of the tick passed,
// in daemon registration order, at the point of the tick where daemons run.
type SteadyTicker interface {
	SteadyTick(m *Machine) bool
	SteadyAdvance(m *Machine)
}

// SteadyEntry is a daemon's declaration of what its per-tick work amounts to
// inside a steady window: a fixed overhead charge (Charge µs against
// ChargeCPU per tick, exactly what its Tick would ChargeOverhead) and an
// optional per-tick Ticker for internal state that must advance. A zero
// Charge with a nil Ticker declares every in-window Tick a pure no-op.
type SteadyEntry struct {
	ChargeCPU int
	Charge    Time
	Ticker    SteadyTicker
}

// SteadyDaemon is the opt-in contract that lets a Daemon participate in
// steady-phase advancement, the busy-machine analogue of Sleeper. When
// SteadyBegin returns ok, every Tick call during the window must reduce to
// the declared entry: charge exactly (ChargeCPU, Charge) and otherwise
// mutate nothing the machine or a later observer can see — no actuation
// (DVFS, caps, hotplug, migration), no trace emission, no decision — with
// internal state advanced solely through the entry's Ticker. SteadyBegin
// itself must be pure; it is consulted once per window, so any condition it
// certifies must be invariant while the runnable set, placement, platform
// state, and heartbeat counts are frozen (which the machine-side
// certification guarantees for the window). Returning !ok is always safe:
// the machine falls back to the daemon's Sleeper contract, or to full
// per-tick stepping.
type SteadyDaemon interface {
	Daemon
	SteadyBegin(m *Machine) (SteadyEntry, bool)
}

// SteadyPlacer is the busy-machine analogue of QuiescentPlacer: Settled
// reports whether the next Place call is certain to be a pure no-op even
// though threads are runnable — every thread in its mask and no balancing
// move available — and will stay one while runnability, placement, affinity,
// and the online mask are all frozen. Placers with per-call state (e.g.
// gts.Scheduler) must not implement it.
type SteadyPlacer interface {
	Placer
	Settled(m *Machine) bool
}

// steadyThread is one window-constant plan row: the thread, its resolved
// speed (speedBase × speedFactor × cacheFactor, frozen with placement), its
// core's share, and the per-tick progress increment done = speed*share/1e6 —
// the exact value execute's partial-progress path computes every tick.
type steadyThread struct {
	t     *Thread
	speed float64
	share float64
	done  float64
}

// steadyCore is the per-core plan: the overhead steal (consumed and
// re-charged every tick, so the stolen balance is a fixed point) and the
// [lo, hi) slice of plan threads placed on it, in run-queue order.
type steadyCore struct {
	c        *coreState
	steal    float64
	share    float64
	lo, hi   int
	hasSteal bool
}

// steadyPlan is the reusable per-machine window plan; all slices are
// recycled across windows, so steady advancement allocates nothing after
// the first certification.
type steadyPlan struct {
	cores   []steadyCore
	threads []steadyThread
	tickers []SteadyTicker

	// charges[cpu] is the summed per-tick overhead the window's daemons
	// charge against cpu (chargedCPUs lists the non-zero entries for cheap
	// reset); totalCharge is their machine-wide sum per tick.
	charges     []Time
	chargedCPUs []int
	totalCharge Time
}

// SetSteady enables or disables steady-phase advancement for Run/RunUntil
// (enabled by default). Results are bit-for-bit identical either way — the
// switch mirrors fleet.SetLockstep: it exists for benchmarking and for the
// equivalence suite that proves exactly that.
func (m *Machine) SetSteady(on bool) { m.steadyOff = !on }

// steadyMinTicks is the shortest certified window worth entering RunSteady
// for — below it the certification scan costs more than the batched loop
// saves. steadySkipTicks is the back-off runUntil arms after a failed or
// too-short certification: churny phases (a pipeline blocking on I/O every
// few ticks) would otherwise pay the full scan every tick for nothing. Both
// only steer which advancement path runs; results are bit-identical either
// way.
const (
	steadyMinTicks  = 4
	steadySkipTicks = 4
)

// primeSteady sizes the reusable window plan for the machine's current
// core, daemon, and thread population so that certification inside the hot
// loop never allocates. New, Spawn, and AddDaemon call it from the cold
// construction paths.
func (m *Machine) primeSteady() {
	p := &m.steady
	if len(p.charges) < len(m.cores) {
		p.charges = make([]Time, len(m.cores))
	}
	if cap(p.chargedCPUs) < len(m.cores) {
		p.chargedCPUs = make([]int, 0, len(m.cores))
	}
	if cap(p.cores) < len(m.cores) {
		p.cores = make([]steadyCore, 0, len(m.cores))
	}
	if cap(p.tickers) < len(m.daemons) {
		p.tickers = make([]SteadyTicker, 0, len(m.daemons))
	}
	if cap(p.threads) < len(m.threads) {
		p.threads = make([]steadyThread, 0, len(m.threads))
	}
}

// SteadyUntil certifies the longest window ≤ limit in which the machine is
// busy but steady: the runnable set, per-thread speed factors, placement,
// and online/cap state provably cannot change, so every tick repeats the
// same work pattern. A return of m.Now() means no window could be certified
// and the next tick must run through Step. The bound is conservative (every
// "maybe" is a "no") and is the earliest of: the first pending timer wakeup,
// each non-steady Sleeper daemon's NextWake, and the caller's limit.
// In-window unit completions are not predicted here — RunSteady detects the
// first completing tick exactly and stops before it.
//
// Certification requires, mirroring each per-tick phase of Step:
//
//   - fireTimers: no timer due (the first pending timer bounds the window);
//   - Place: no misplaced thread, and the placer is a SteadyPlacer
//     reporting itself settled (or nil);
//   - execute: every queued thread stall-free (no pending migration
//     penalty), and every core's pending stolen overhead exactly equal to
//     the per-tick charge the window's SteadyDaemons declare — so the
//     steal/recharge cycle is a fixed point and capacity shares repeat;
//   - integratePower: the memo warm and keyed exactly as integratePower
//     keys it (levels, online counts, and the steady per-core tick
//     utilisation, accumulated here in execute's order);
//   - daemons: every daemon a SteadyDaemon whose SteadyBegin accepts, or a
//     Sleeper whose future wake bounds the window.
//
// A successful certification leaves the window plan in m; RunSteady
// executes against it and must be the next advancement call.

func (m *Machine) SteadyUntil(limit Time) Time {
	if limit <= m.now || m.failed {
		return m.now
	}
	if len(m.runnable) == 0 {
		// An idle machine is InertUntil's domain; steady certification
		// exists for machines with work in flight.
		return m.now
	}
	if m.misplaced != 0 || len(m.journal) != 0 {
		return m.now
	}
	if m.placer != nil {
		sp, ok := m.placer.(SteadyPlacer)
		if !ok || !sp.Settled(m) {
			return m.now
		}
	}
	until := limit
	if m.timers.Len() > 0 {
		at := m.timers.entries[0].at
		if at <= m.now {
			return m.now
		}
		if at < until {
			until = at
		}
	}

	p := &m.steady
	for _, cpu := range p.chargedCPUs {
		p.charges[cpu] = 0
	}
	p.chargedCPUs = p.chargedCPUs[:0]
	p.tickers = p.tickers[:0]
	p.totalCharge = 0
	for _, d := range m.daemons {
		if sd, ok := d.(SteadyDaemon); ok {
			if ent, ok := sd.SteadyBegin(m); ok {
				if ent.Charge > 0 {
					cpu := ent.ChargeCPU
					if cpu < 0 || cpu >= len(m.cores) || !m.online.Has(cpu) {
						cpu = m.firstOnline() // ChargeOverhead's fallback
					}
					if p.charges[cpu] == 0 {
						p.chargedCPUs = append(p.chargedCPUs, cpu)
					}
					p.charges[cpu] += ent.Charge
					p.totalCharge += ent.Charge
				}
				if ent.Ticker != nil {
					p.tickers = append(p.tickers, ent.Ticker)
				}
				continue
			}
		}
		s, ok := d.(Sleeper)
		if !ok {
			return m.now
		}
		w := s.NextWake(m)
		if w <= m.now {
			return m.now
		}
		if w < until {
			until = w
		}
	}

	powerOn := m.cfg.Power != nil
	if powerOn {
		for k := hmp.ClusterKind(0); k < hmp.NumClusters; k++ {
			if !m.powerValid[k] || m.levels[k] != m.lastLevel[k] {
				return m.now
			}
			online := m.plat.Clusters[k].Cores
			if m.opm != nil && m.online != m.allMask {
				online = m.OnlineCount(k)
			}
			if online != m.lastOnline[k] {
				return m.now
			}
		}
	}

	var speedByCluster [hmp.NumClusters]float64
	for k := hmp.ClusterKind(0); k < hmp.NumClusters; k++ {
		speedByCluster[k] = m.freqScale[k][m.levels[k]]
	}
	p.cores = p.cores[:0]
	p.threads = p.threads[:0]
	for i := range m.cores {
		c := &m.cores[i]
		stealT := p.charges[i]
		if c.stolen != stealT || stealT >= m.cfg.TickLen {
			// The steal/recharge cycle is a fixed point only when the
			// pending balance equals the per-tick charge and execute can
			// consume it whole with capacity left over.
			return m.now
		}
		n := len(c.run)
		tu := 0.0
		sc := steadyCore{c: c, lo: len(p.threads)}
		if stealT > 0 {
			sc.steal = float64(stealT)
			sc.hasSteal = true
			tu += sc.steal
		}
		if n > 0 {
			avail := m.tickUS - sc.steal
			share := avail / float64(n)
			sc.share = share
			cluster := c.cluster
			speedBase := speedByCluster[cluster]
			for _, id := range c.run {
				t := m.threads[id]
				if t.penalty != 0 || t.blocked {
					return m.now
				}
				speed := speedBase * t.speedFactor[cluster] * m.cacheFactor(t, cluster)
				if speed <= 0 {
					continue // consumes nothing, exactly as in execute
				}
				p.threads = append(p.threads, steadyThread{
					t: t, speed: speed, share: share, done: speed * share / 1e6,
				})
				tu += share
			}
		}
		sc.hi = len(p.threads)
		if powerOn {
			k := c.cluster
			if m.lastTickUse[k][i-m.plat.FirstCPU(k)] != tu {
				return m.now
			}
		}
		if sc.hasSteal || sc.hi > sc.lo {
			p.cores = append(p.cores, sc)
		}
	}
	return until
}

// RunSteady executes the window certified by the immediately preceding
// SteadyUntil call as a tight per-tick loop, stopping early — before the
// offending tick — when a thread's current unit would complete within its
// share (the heartbeat-window edge: the completion runs through the general
// Step so its callback, beats, and reconcile happen on the reference path)
// or when a planned daemon's SteadyTick declines the tick. Reports whether
// at least one tick was advanced; on false the machine is untouched and the
// caller must fall back to Step.
//
// Per tick, in Step's order: thread progress accrues with the exact
// subtraction execute performs (remaining -= done, workDone += done, core
// busy += share, after the overhead steal's busy add), the memoized
// per-cluster energy adds replay in integratePower's order (cluster
// accumulator then total, clusters ascending), daemon internal state
// advances via SteadyAdvance, and the clock and tick counters increment.
// The per-core tick utilisation and stolen balances are fixed points of the
// certified pattern and are left untouched; lastRan stamps and the summed
// overhead charge are applied once at the end (only their final values are
// observable).
func (m *Machine) RunSteady(until Time) bool {
	p := &m.steady
	start := m.now
	tickLen := m.cfg.TickLen
	powerOn := m.cfg.Power != nil
	// Hoist the energy accumulators into registers for the window; nothing
	// observes them mid-window.
	e := m.lastE
	ce := m.clusterEnergyJ
	tot := m.energyJ
window:
	for m.now < until {
		for i := range p.threads {
			st := &p.threads[i]
			if st.t.remaining/st.speed*1e6 <= st.share {
				break window // unit completes this tick: general path's turn
			}
		}
		for _, tk := range p.tickers {
			if !tk.SteadyTick(m) {
				break window
			}
		}
		m.execTick++
		for ci := range p.cores {
			sc := &p.cores[ci]
			if sc.hasSteal {
				sc.c.busy += sc.steal
			}
			for i := sc.lo; i < sc.hi; i++ {
				st := &p.threads[i]
				st.t.remaining -= st.done
				st.t.workDone += st.done
				sc.c.busy += sc.share
			}
		}
		if powerOn {
			for k := 0; k < int(hmp.NumClusters); k++ {
				ce[k] += e[k]
				tot += e[k]
			}
		}
		for _, tk := range p.tickers {
			tk.SteadyAdvance(m)
		}
		m.now += tickLen
		m.ticks++
	}
	if m.now == start {
		return false
	}
	m.clusterEnergyJ = ce
	m.energyJ = tot
	steps := (m.now - start) / tickLen
	m.overhead += steps * p.totalCharge
	for i := range p.threads {
		p.threads[i].t.lastRan = m.execTick
	}
	return true
}
