package mphars

import (
	"math"
	"sort"

	"repro/internal/gts"
	"repro/internal/heartbeat"
	"repro/internal/hmp"
	"repro/internal/sim"
)

// ConsIConfig tunes the CONS-I baseline.
type ConsIConfig struct {
	// AdaptEvery is the adaptation period in heartbeats. CONS-I performs no
	// estimation, so it adapts frequently, one small step at a time.
	// Default 1 (every heartbeat outside the band).
	AdaptEvery int64

	// FreezeBeats is how many heartbeats every application must observe
	// after a performance decrease before the next decrease is allowed (the
	// interference-aware pause of §4.1.1). Default 5.
	FreezeBeats int

	// ScoreBucket quantizes performance scores when building the sorted
	// configuration ladder; configurations within one bucket are considered
	// equivalent and only the cheapest representative is kept. Default 0.25.
	ScoreBucket float64
}

func (c ConsIConfig) withDefaults() ConsIConfig {
	if c.AdaptEvery <= 0 {
		c.AdaptEvery = 1
	}
	if c.FreezeBeats <= 0 {
		c.FreezeBeats = 5
	}
	if c.ScoreBucket <= 0 {
		c.ScoreBucket = 0.25
	}
	return c
}

type consApp struct {
	proc            *sim.Process
	target          heartbeat.Target
	lastSeen        int64
	adaptationIndex int64
	lastRate        float64
	freeze          int
	trace           []TracePoint
}

// ConsI is the paper's conservative incremental adaptation baseline
// (§4.1.1, evaluated as CONS-I in Figure 5.4): all applications share every
// core and the cluster frequencies under the Linux HMP scheduler, and the
// runtime walks a single list of system configurations sorted by the
// performance score perfScore = C_B·r0·(f_B/f0) + C_L·(f_L/f0), one step per
// adaptation. Decision making is conservative: any unsatisfied application
// may always push the system up; the system steps down only when every
// application overperforms, and a step down pauses adaptation until
// everyone has collected fresh performance data.
type ConsI struct {
	cfg     ConsIConfig
	plat    *hmp.Platform
	g       *gts.Scheduler
	configs []hmp.State // the perfScore ladder, ascending
	cur     int
	apps    []*consApp
}

// NewConsI builds the CONS-I runtime on a machine: it installs a GTS placer
// over all cores and starts at the maximum configuration.
func NewConsI(m *sim.Machine, cfg ConsIConfig) *ConsI {
	cfg = cfg.withDefaults()
	plat := m.Platform()
	c := &ConsI{
		cfg:     cfg,
		plat:    plat,
		g:       gts.New(plat),
		configs: buildLadder(plat, cfg.ScoreBucket),
	}
	c.cur = len(c.configs) - 1
	m.SetPlacer(c.g)
	c.applyConfig(m)
	return c
}

// buildLadder enumerates all states, quantizes their performance score, and
// keeps the cheapest representative per bucket, sorted ascending by score.
func buildLadder(plat *hmp.Platform, bucket float64) []hmp.State {
	r0 := plat.R0()
	type entry struct {
		st    hmp.State
		score float64
		cost  float64
	}
	best := map[int64]entry{}
	for _, st := range hmp.AllStates(plat, 1) {
		score := st.PerfScore(plat, r0)
		key := int64(math.Round(score / bucket))
		// Cost proxy: prefer fewer, slower big cores for the same score.
		cost := float64(st.BigCores)*3*(1+plat.FreqScale(hmp.Big, st.BigLevel)) +
			float64(st.LittleCores)*(1+plat.FreqScale(hmp.Little, st.LittleLevel))
		e, ok := best[key]
		if !ok || cost < e.cost || (cost == e.cost && lessState(st, e.st)) {
			best[key] = entry{st: st, score: score, cost: cost}
		}
	}
	entries := make([]entry, 0, len(best))
	for _, e := range best {
		entries = append(entries, e)
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].score != entries[j].score {
			return entries[i].score < entries[j].score
		}
		return lessState(entries[i].st, entries[j].st)
	})
	// The top of the ladder must be the true maximum configuration (the
	// baseline start state), regardless of bucket representatives.
	max := hmp.MaxState(plat)
	if entries[len(entries)-1].st != max {
		entries = append(entries, entry{st: max, score: max.PerfScore(plat, r0)})
	}
	out := make([]hmp.State, len(entries))
	for i, e := range entries {
		out[i] = e.st
	}
	return out
}

func lessState(a, b hmp.State) bool {
	if a.BigCores != b.BigCores {
		return a.BigCores < b.BigCores
	}
	if a.LittleCores != b.LittleCores {
		return a.LittleCores < b.LittleCores
	}
	if a.BigLevel != b.BigLevel {
		return a.BigLevel < b.BigLevel
	}
	return a.LittleLevel < b.LittleLevel
}

// Register adds an application with its performance target.
func (c *ConsI) Register(proc *sim.Process, target heartbeat.Target) {
	proc.HB.SetTarget(target)
	c.apps = append(c.apps, &consApp{proc: proc, target: target})
}

// Config returns the current ladder configuration.
func (c *ConsI) Config() hmp.State { return c.configs[c.cur] }

// LadderLen returns the number of rungs on the configuration ladder.
func (c *ConsI) LadderLen() int { return len(c.configs) }

// Trace returns the behaviour trace of the given process.
func (c *ConsI) Trace(proc *sim.Process) []TracePoint {
	for _, a := range c.apps {
		if a.proc == proc {
			return a.trace
		}
	}
	return nil
}

// Tick implements sim.Daemon.
func (c *ConsI) Tick(m *sim.Machine) {
	st := c.configs[c.cur]
	for _, a := range c.apps {
		count := a.proc.HB.Count()
		for a.lastSeen < count {
			a.lastSeen++
			if a.freeze > 0 {
				a.freeze--
			}
		}
		if rec, ok := a.proc.HB.Latest(); ok {
			a.lastRate = rec.WindowRate
			if len(a.trace) == 0 || a.trace[len(a.trace)-1].HBIndex != rec.Index {
				a.trace = append(a.trace, TracePoint{
					Time:        m.Now(),
					HBIndex:     rec.Index,
					HPS:         rec.WindowRate,
					BigCores:    st.BigCores,
					LittleCores: st.LittleCores,
					BigGHz:      float64(c.plat.Clusters[hmp.Big].KHz(st.BigLevel)) / 1e6,
					LittleGHz:   float64(c.plat.Clusters[hmp.Little].KHz(st.LittleLevel)) / 1e6,
				})
			}
		}
	}
	for _, a := range c.apps {
		c.adaptOne(m, a)
	}
}

func (c *ConsI) adaptOne(m *sim.Machine, a *consApp) {
	rec, ok := a.proc.HB.Latest()
	if !ok {
		return
	}
	if rec.Index < a.adaptationIndex+c.cfg.AdaptEvery {
		return
	}
	rate := rec.WindowRate
	if !heartbeat.OutsideBand(a.target, rate) {
		return
	}
	a.adaptationIndex = rec.Index

	switch heartbeat.Classify(a.target, rate) {
	case heartbeat.Underperf:
		// No restriction on increasing system performance.
		if c.cur < len(c.configs)-1 {
			c.cur++
			c.applyConfig(m)
		}
	case heartbeat.Overperf:
		// Conservative: decrease only if every other active application
		// also overperforms and nobody is still settling from the last
		// decrease.
		if !c.allOthersOverperf(a) || c.anyFrozen() {
			return
		}
		if c.cur > 0 {
			c.cur--
			c.applyConfig(m)
			for _, o := range c.apps {
				o.freeze = c.cfg.FreezeBeats
			}
		}
	}
}

func (c *ConsI) allOthersOverperf(self *consApp) bool {
	for _, o := range c.apps {
		if o == self || o.proc.HB.Count() == 0 {
			continue // applications that have not started beating yet
		}
		if heartbeat.Classify(o.target, o.lastRate) != heartbeat.Overperf {
			return false
		}
	}
	return true
}

func (c *ConsI) anyFrozen() bool {
	for _, a := range c.apps {
		if a.freeze > 0 {
			return true
		}
	}
	return false
}

// applyConfig actuates the current ladder rung: cluster frequencies plus the
// shared global cpuset of the first C_L little and C_B big cores.
func (c *ConsI) applyConfig(m *sim.Machine) {
	st := c.configs[c.cur]
	m.SetLevel(hmp.Big, st.BigLevel)
	m.SetLevel(hmp.Little, st.LittleLevel)
	var mask hmp.CPUMask
	for i := 0; i < st.LittleCores; i++ {
		mask = mask.Set(c.plat.CPU(hmp.Little, i))
	}
	for i := 0; i < st.BigCores; i++ {
		mask = mask.Set(c.plat.CPU(hmp.Big, i))
	}
	if mask == 0 {
		mask = hmp.AllCPUs(c.plat)
	}
	c.g.SetAllowed(mask)
}
