package core

import "math"

// Assignment is one row of the paper's Table 3.1: how many threads go to
// each cluster (T_B, T_L) and how many allocated cores each cluster actually
// uses (C_B,U, C_L,U — which can be smaller than the allocation).
type Assignment struct {
	TB, TL   int // threads assigned to the big / little cluster
	CBU, CLU int // cores actually used on each cluster
}

// Assign computes the thread assignment of Table 3.1: the split of T
// equally-loaded threads between CB big cores and CL little cores that
// minimizes the completion time, where one big core is r times as fast as
// one little core (r > 0; the r < 1 rows are the symmetric derivation the
// paper mentions).
func Assign(T, CB, CL int, r float64) Assignment {
	if T <= 0 || CB+CL <= 0 || CB < 0 || CL < 0 {
		return Assignment{}
	}
	if r < 1 {
		// The little cluster is the faster one: swap roles, assign with the
		// inverse ratio, and swap back.
		a := Assign(T, CL, CB, 1/r)
		return Assignment{TB: a.TL, TL: a.TB, CBU: a.CLU, CLU: a.CBU}
	}
	if CB == 0 {
		// Degenerate: only little cores are allocated.
		return Assignment{TL: T, CLU: minInt(T, CL)}
	}
	rCB := r * float64(CB)
	ft := float64(T)
	switch {
	case T <= CB:
		return Assignment{TB: T, CBU: T}
	case ft <= rCB:
		return Assignment{TB: T, CBU: CB}
	case ft <= rCB+float64(CL):
		tb := int(math.Floor(rCB))
		if tb > T {
			tb = T
		}
		tl := T - tb
		return Assignment{TB: tb, TL: tl, CBU: CB, CLU: tl}
	default:
		tb := int(math.Ceil(rCB / (rCB + float64(CL)) * ft))
		if tb > T {
			tb = T
		}
		tl := T - tb
		return Assignment{TB: tb, TL: tl, CBU: CB, CLU: minInt(tl, CL)}
	}
}

// CompletionTime returns the paper's t_B, t_L and t_f = max(t_B, t_L) for an
// assignment: the time for each cluster to finish its share of one unit of
// total work W = 1 split equally over T threads, given per-core speeds SB
// and SL.
func (a Assignment) CompletionTime(T int, SB, SL float64) (tB, tL, tF float64) {
	if T <= 0 {
		return 0, 0, math.Inf(1)
	}
	w := 1.0 / float64(T) // per-thread work
	if a.TB > 0 {
		if a.TB <= a.CBU {
			tB = w / SB
		} else {
			tB = float64(a.TB) * w / (float64(a.CBU) * SB)
		}
	}
	if a.TL > 0 {
		if a.TL <= a.CLU {
			tL = w / SL
		} else {
			tL = float64(a.TL) * w / (float64(a.CLU) * SL)
		}
	}
	tF = math.Max(tB, tL)
	if a.TB+a.TL == 0 || tF == 0 {
		return tB, tL, math.Inf(1)
	}
	return tB, tL, tF
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
