// Package sim is a deterministic discrete-time simulator of a big.LITTLE
// HMP machine. It substitutes for the paper's ODROID-XU3 testbed: it exposes
// exactly the observation and actuation surface HARS uses on real hardware —
// per-application heartbeats, per-thread CPU affinity (sched_setaffinity),
// per-cluster DVFS, and cluster power draw — while running entirely in
// process with no OS-thread control.
//
// The machine advances in fixed ticks (default 1 ms). Each tick the placer
// (an OS scheduler model: the mask balancer for HARS runs, the GTS model for
// baselines) places runnable threads on cores; each core divides its tick
// capacity equally among the threads on it; threads retire abstract work
// units at a rate of FreqScale × application-specific IPC factor per second;
// completed units invoke the owning program's callback, which hands out more
// work, blocks the thread, moves pipeline tokens, and emits heartbeats. A
// pluggable power model integrates per-cluster energy every tick, and
// daemons (runtime managers, sensors, schedulers) run at the end of each
// tick.
package sim

import (
	"fmt"

	"repro/internal/heartbeat"
	"repro/internal/hmp"
)

// Time is simulated time in microseconds.
type Time = int64

// Convenient durations in simulated time.
const (
	Microsecond Time = 1
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Seconds converts a simulated duration to floating-point seconds.
func Seconds(d Time) float64 { return float64(d) / float64(Second) }

// PowerModel computes the power drawn by one cluster during a tick.
// Implementations live in internal/power; the interface lives here so the
// simulator does not depend on any particular model.
//
// ClusterPower must be a pure function of its arguments: the machine
// memoizes the per-tick energy increment while a cluster's level and busy
// fractions are unchanged, so a stateful model (e.g. thermal drift) would
// not be re-consulted in steady state.
type PowerModel interface {
	// ClusterPower returns the watts drawn by cluster k while running at
	// frequency level `level` with the given per-core busy fractions
	// (one entry per core of the cluster, each in [0, 1]).
	ClusterPower(k hmp.ClusterKind, level int, coreBusy []float64) float64
}

// OnlinePowerModel is an optional PowerModel extension for models that
// distinguish powered from hotplugged-off cores: a core taken offline stops
// drawing leakage, so the per-cluster floor shrinks with the online count.
// While every core of a cluster is online the machine keeps calling plain
// ClusterPower — implementations must make ClusterPowerOnline with a full
// online count agree bit-for-bit with ClusterPower — so models that ignore
// hotplug (and runs that never unplug a core) are entirely unaffected.
//
// Like ClusterPower, ClusterPowerOnline must be a pure function of its
// arguments: the onlineCores count participates in the machine's per-tick
// energy memo alongside the level and busy fractions.
type OnlinePowerModel interface {
	PowerModel
	ClusterPowerOnline(k hmp.ClusterKind, level int, coreBusy []float64, onlineCores int) float64
}

// Placer is the OS scheduler model: every tick it may migrate threads
// between cores (respecting affinity masks is the placer's job).
type Placer interface {
	Place(m *Machine)
}

// Daemon is a per-tick hook that runs after execution and power accounting:
// runtime managers, sensors, and load trackers are daemons.
type Daemon interface {
	Tick(m *Machine)
}

// Config carries machine construction parameters. The zero value selects
// sensible defaults.
type Config struct {
	TickLen Time // simulation tick, default 1 ms

	// MigrationPenaltySame and MigrationPenaltyCross are the stall a thread
	// pays after migrating within a cluster / across clusters (cold caches).
	// Defaults: 50 µs and 300 µs.
	MigrationPenaltySame  Time
	MigrationPenaltyCross Time

	// Power is the machine's power model; nil disables energy accounting.
	Power PowerModel

	// MaxUnitsPerTick bounds how many work units one thread may complete in
	// a single tick, a guard against zero-work programs. Default 10000.
	MaxUnitsPerTick int
}

type coreState struct {
	id      int
	cluster hmp.ClusterKind
	runLen  int     // runnable threads currently placed here (O(1) RunQueueLen)
	run     []int32 // run queue: Global thread IDs placed here, ascending
	busy    float64 // cumulative busy µs (including charged overhead)
	stolen  Time    // pending manager overhead to steal from capacity
	tickUse float64 // µs of this tick spent busy (scratch for power model)
}

// Machine is the simulated HMP system.
type Machine struct {
	plat *hmp.Platform
	cfg  Config

	now     Time
	cores   []coreState
	procs   []*Process
	threads []*Thread
	levels  [hmp.NumClusters]int

	// online is the hotplug state: offline cores hold no threads, execute
	// nothing, and are invisible to placers. caps are per-cluster DVFS
	// ceilings (thermal capping): SetLevel clamps to them. clusterMask
	// caches the per-cluster CPU masks for OnlineCount.
	online      hmp.CPUMask
	allMask     hmp.CPUMask // mask of every core: online == allMask ⇒ no hotplug active
	caps        [hmp.NumClusters]int
	clusterMask [hmp.NumClusters]hmp.CPUMask

	// failed marks a crashed machine (Fail without a matching Heal): every
	// process was killed, no core has power, and energy integration is
	// frozen. preFailOnline is the hotplug state Heal restores.
	failed        bool
	preFailOnline hmp.CPUMask

	// runnable holds the Global IDs of runnable threads in ascending order,
	// maintained incrementally on block/unblock transitions. The per-core
	// run queues (coreState.run) are the placed subset. Placers iterate
	// these instead of rescanning all threads every tick.
	runnable []int32
	// During execute the run-queue lists are frozen: block/unblock
	// transitions flip flags and counters eagerly but defer the list edits,
	// recording touched threads in the journal; reconcile applies the net
	// membership changes once at the end of the tick. A unit completion
	// whose UnitDone callback immediately re-arms the thread — the
	// overwhelmingly common transition — therefore moves nothing at all.
	inExec  bool
	journal []*Thread

	// misplaced counts runnable threads placed outside their affinity mask
	// (or nowhere); while it is zero the mask balancer's repair pass and
	// per-thread mask checks are skipped entirely.
	misplaced int

	execTick int64 // index of the tick execute is processing (or last processed)

	tickSec float64 // Seconds(cfg.TickLen), hoisted for integratePower
	tickUS  float64 // float64(cfg.TickLen)
	nLittle int     // plat.Clusters[Little].Cores, hoisted for cacheFactor

	// Power-integration memo: while a cluster's DVFS level, online-core
	// count, and every core's busy time are identical to the previous
	// tick — the steady state — the per-tick energy increment is reused
	// instead of recomputed (bit-for-bit identical, since the power model
	// is a pure function of those inputs).
	lastLevel   [hmp.NumClusters]int
	lastOnline  [hmp.NumClusters]int
	lastTickUse [hmp.NumClusters][]float64
	lastE       [hmp.NumClusters]float64
	lastPW      [hmp.NumClusters]float64
	powerValid  [hmp.NumClusters]bool

	// opm is cfg.Power's OnlinePowerModel extension, resolved once at New;
	// nil when the model does not distinguish offline cores.
	opm OnlinePowerModel

	placer  Placer
	daemons []Daemon
	timers  timerHeap

	// failListeners fire on every Fail/Heal transition; event-driven
	// schedulers keep their wake indexes current through them instead of
	// rescanning every machine's failed state each barrier. tracerListeners
	// fire on SetTracer; the fleet invalidates its shared-tracer memo
	// through them.
	failListeners   []func(failed bool)
	tracerListeners []func()

	energyJ        float64
	clusterEnergyJ [hmp.NumClusters]float64
	overhead       Time

	// freqScale caches plat.FreqScale per cluster and level (hot in execute).
	freqScale [hmp.NumClusters][]float64

	busyScratch [hmp.NumClusters][]float64
	ticks       int64

	// steadySkip is runUntil's certification back-off: ticks left to skip
	// the SteadyUntil attempt after a failed or too-short window, so churny
	// phases do not pay the scan every tick (see steadySkipTicks).
	steadySkip int
	// steadyOff disables steady-phase advancement (SetSteady); steady is the
	// reusable window plan SteadyUntil certifies and RunSteady executes.
	steadyOff bool
	steady    steadyPlan

	tracer *Tracer
	// nodeName is the machine's fleet identity (set by NewNode, "" for a
	// standalone machine), stamped onto every event the machine emits so
	// a tracer shared across nodes still attributes correctly.
	nodeName string
}

// New creates a machine over the platform with both clusters at their
// maximum frequency level and the default mask-balancing placer.
func New(plat *hmp.Platform, cfg Config) *Machine {
	if cfg.TickLen <= 0 {
		cfg.TickLen = Millisecond
	}
	if cfg.MigrationPenaltySame <= 0 {
		cfg.MigrationPenaltySame = 50 * Microsecond
	}
	if cfg.MigrationPenaltyCross <= 0 {
		cfg.MigrationPenaltyCross = 300 * Microsecond
	}
	if cfg.MaxUnitsPerTick <= 0 {
		cfg.MaxUnitsPerTick = 10000
	}
	balancer := NewMaskBalancer()
	balancer.Prime(plat.TotalCores())
	m := &Machine{plat: plat, cfg: cfg, placer: balancer}
	if o, ok := cfg.Power.(OnlinePowerModel); ok {
		m.opm = o
	}
	m.tickSec = Seconds(cfg.TickLen)
	m.tickUS = float64(cfg.TickLen)
	m.nLittle = plat.Clusters[hmp.Little].Cores
	m.online = hmp.AllCPUs(plat)
	m.allMask = m.online
	for k := hmp.ClusterKind(0); k < hmp.NumClusters; k++ {
		m.levels[k] = plat.Clusters[k].MaxLevel()
		m.caps[k] = plat.Clusters[k].MaxLevel()
		m.clusterMask[k] = hmp.ClusterMask(plat, k)
		m.busyScratch[k] = make([]float64, plat.Clusters[k].Cores)
		m.lastTickUse[k] = make([]float64, plat.Clusters[k].Cores)
		m.freqScale[k] = make([]float64, plat.Clusters[k].Levels())
		for lv := range m.freqScale[k] {
			m.freqScale[k][lv] = plat.FreqScale(k, lv)
		}
	}
	m.cores = make([]coreState, plat.TotalCores())
	for cpu := range m.cores {
		m.cores[cpu] = coreState{id: cpu, cluster: plat.ClusterOf(cpu)}
	}
	m.primeSteady()
	return m
}

// Platform returns the machine's platform description.
func (m *Machine) Platform() *hmp.Platform { return m.plat }

// Now returns the current simulated time.
func (m *Machine) Now() Time { return m.now }

// TickLen returns the machine's tick length.
func (m *Machine) TickLen() Time { return m.cfg.TickLen }

// SetPlacer installs the OS scheduler model.
func (m *Machine) SetPlacer(p Placer) { m.placer = p }

// AddDaemon registers a per-tick hook. Daemons run in registration order.
func (m *Machine) AddDaemon(d Daemon) {
	m.daemons = append(m.daemons, d)
	m.primeSteady()
}

// RemoveDaemon unregisters a previously added daemon (no-op if absent).
// Scenario engines use this to detach the manager of a departed application.
func (m *Machine) RemoveDaemon(d Daemon) {
	for i, x := range m.daemons {
		if x == d {
			m.daemons = append(m.daemons[:i], m.daemons[i+1:]...)
			return
		}
	}
}

// SetLevel sets the DVFS frequency level of cluster k (clamped to the grid
// and to the cluster's active frequency ceiling, see SetLevelCap). This is
// the simulated cpufreq actuation knob; per-cluster DVFS means every core of
// the cluster changes together, exactly the constraint MP-HARS's
// interference-aware adaptation exists to manage.
func (m *Machine) SetLevel(k hmp.ClusterKind, level int) {
	level = m.plat.Clusters[k].ClampLevel(level)
	if level > m.caps[k] {
		level = m.caps[k]
	}
	if m.tracer != nil && level != m.levels[k] {
		m.emit(Event{
			T: m.now, Kind: EvDVFS, Cluster: k, Level: level,
			KHz: m.plat.Clusters[k].KHz(level),
		})
	}
	m.levels[k] = level
}

// Level returns the current DVFS level of cluster k.
func (m *Machine) Level(k hmp.ClusterKind) int { return m.levels[k] }

// SetLevelCap installs a DVFS frequency ceiling on cluster k (clamped to the
// grid) — the simulated thermal-capping knob. The current level is lowered
// immediately if it exceeds the new ceiling, and SetLevel clamps to the
// ceiling until it is raised again (restore with the cluster's MaxLevel).
func (m *Machine) SetLevelCap(k hmp.ClusterKind, cap int) {
	cap = m.plat.Clusters[k].ClampLevel(cap)
	if m.tracer != nil && cap != m.caps[k] {
		m.emit(Event{
			T: m.now, Kind: EvCap, Cluster: k, Level: cap,
			KHz: m.plat.Clusters[k].KHz(cap),
		})
	}
	m.caps[k] = cap
	if m.levels[k] > cap {
		m.SetLevel(k, cap)
	}
}

// LevelCap returns the active DVFS ceiling of cluster k.
func (m *Machine) LevelCap(k hmp.ClusterKind) int { return m.caps[k] }

// CoreOnline reports whether the given CPU is online.
func (m *Machine) CoreOnline(cpu int) bool { return m.online.Has(cpu) }

// OnlineMask returns the mask of currently online CPUs.
func (m *Machine) OnlineMask() hmp.CPUMask { return m.online }

// OnlineCount returns how many cores of cluster k are online.
func (m *Machine) OnlineCount(k hmp.ClusterKind) int {
	return m.online.Intersect(m.clusterMask[k]).Count()
}

// SetCoreOnline changes the hotplug state of one CPU. Taking a core offline
// evicts every thread placed on it (runnable evictees become misplaced and
// are re-placed by the placer on the next tick; threads whose affinity
// intersects no online core stay unplaced and consume nothing); offline
// cores execute nothing and are invisible to placers. Bringing a core back
// online makes it placeable again. Must not be called from mid-execute
// program callbacks; call it between ticks or from a daemon.
func (m *Machine) SetCoreOnline(cpu int, online bool) {
	if cpu < 0 || cpu >= len(m.cores) {
		panic(fmt.Sprintf("sim: SetCoreOnline(%d): invalid cpu", cpu))
	}
	if m.inExec {
		panic("sim: SetCoreOnline called during execute")
	}
	if m.failed {
		// The machine is crashed: no core has power, so hotplug acts on the
		// state Heal will restore rather than on the (empty) live mask. No
		// threads run on a failed machine, so there is nothing to evict.
		if m.preFailOnline.Has(cpu) == online {
			return
		}
		if m.tracer != nil {
			m.emit(Event{T: m.now, Kind: EvHotplug, CPU: cpu, Online: online})
		}
		if online {
			m.preFailOnline = m.preFailOnline.Set(cpu)
		} else {
			m.preFailOnline = m.preFailOnline.Clear(cpu)
		}
		return
	}
	if m.online.Has(cpu) == online {
		return
	}
	if m.tracer != nil {
		m.emit(Event{T: m.now, Kind: EvHotplug, CPU: cpu, Online: online})
	}
	if online {
		m.online = m.online.Set(cpu)
		return
	}
	m.online = m.online.Clear(cpu)
	for _, t := range m.threads {
		if t.core == cpu {
			m.evict(t)
		}
	}
}

// Fail crashes the machine: every resident process is killed without exiting
// cleanly (exactly the state Kill leaves — statistics and digests for the
// executed portion stay valid), every core loses power, and energy
// integration freezes at zero draw. The machine keeps stepping so a fleet's
// shared clock stays in lockstep; it just executes nothing. The hotplug
// state at the moment of the crash is remembered and restored by Heal.
// Idempotent; must not be called from mid-execute program callbacks.
func (m *Machine) Fail() {
	if m.inExec {
		panic("sim: Fail called during execute")
	}
	if m.failed {
		return
	}
	if m.tracer != nil {
		m.emit(Event{T: m.now, Kind: EvNodeDown})
	}
	m.failed = true
	for _, p := range m.procs {
		m.Kill(p)
	}
	m.preFailOnline = m.online
	m.online = 0
	for _, t := range m.threads {
		if t.core >= 0 {
			m.evict(t)
		}
	}
	// A powered-off board draws nothing: report zero instantaneous power and
	// force a fresh model evaluation after Heal.
	for k := hmp.ClusterKind(0); k < hmp.NumClusters; k++ {
		m.lastPW[k] = 0
		m.powerValid[k] = false
	}
	for _, fn := range m.failListeners {
		fn(true)
	}
}

// Heal brings a crashed machine back: the pre-crash hotplug state (adjusted
// by any SetCoreOnline calls made while down) is restored and the machine
// accepts work again. Processes killed by the crash stay dead — recovery of
// their state is the fleet layer's job, via snapshots taken before the
// crash. Idempotent.
func (m *Machine) Heal() {
	if m.inExec {
		panic("sim: Heal called during execute")
	}
	if !m.failed {
		return
	}
	m.failed = false
	m.online = m.preFailOnline
	m.preFailOnline = 0
	if m.tracer != nil {
		m.emit(Event{T: m.now, Kind: EvNodeUp})
	}
	for _, fn := range m.failListeners {
		fn(false)
	}
}

// Failed reports whether the machine is crashed (Fail without Heal).
func (m *Machine) Failed() bool { return m.failed }

// OnFailureChange registers fn to run at the end of every Fail and Heal
// transition (idempotent repeats do not fire). Event-driven fleet
// schedulers subscribe so their wake indexes learn about crashes and heals
// the moment they happen, instead of rescanning every machine per barrier.
func (m *Machine) OnFailureChange(fn func(failed bool)) {
	m.failListeners = append(m.failListeners, fn)
}

// evict removes a thread from its current core (which must be valid),
// leaving it unplaced; the mask balancer's repair pass re-places runnable
// evictees.
func (m *Machine) evict(t *Thread) {
	if t.queued {
		m.cores[t.core].run = removeID(m.cores[t.core].run, int32(t.Global))
		t.queued = false
	}
	if !t.blocked {
		m.cores[t.core].runLen--
	}
	t.core = -1
	m.updateMisplaced(t)
}

// Kill terminates a process: every thread is parked permanently, pending
// wakeups are discarded on delivery, and SetWork becomes a no-op. The
// process keeps its thread IDs and accumulated statistics, so digests and
// traces of the completed portion remain valid. Scenario engines use this
// for application departure.
func (m *Machine) Kill(p *Process) {
	if p.exited {
		return
	}
	p.exited = true
	for _, t := range p.Threads {
		m.makeBlocked(t)
		t.remaining = 0
	}
}

// Procs returns the processes spawned on the machine.
func (m *Machine) Procs() []*Process { return m.procs }

// NumProcs returns how many processes have ever been spawned or restored on
// the machine (exited ones included), in O(1). Fleet-wide rollups use it to
// skip the per-process walk on the many nodes of a large fleet that have
// never hosted anything.
func (m *Machine) NumProcs() int { return len(m.procs) }

// Threads returns every thread on the machine in spawn order.
func (m *Machine) Threads() []*Thread { return m.threads }

// Spawn creates a process running the program, with all threads initially
// blocked and affine to every CPU, then calls the program's Start hook (which
// typically hands out the first units of work).
func (m *Machine) Spawn(name string, prog Program, hbWindow int) *Process {
	p := &Process{
		ID:   len(m.procs),
		Name: name,
		m:    m,
		prog: prog,
		HB:   heartbeat.NewMonitor(name, hbWindow),
	}
	n := prog.NumThreads()
	if n <= 0 {
		panic(fmt.Sprintf("sim: program %q declares %d threads", name, n))
	}
	// Resolve the per-thread speed factors and the optional cache-sharing
	// bonus once at spawn: the hot execute path then reads plain fields
	// instead of making an interface call and a type assertion per thread
	// per tick.
	if cs, ok := prog.(CacheSensitive); ok {
		p.cacheBonus = cs.CacheBonus()
	}
	all := hmp.AllCPUs(m.plat)
	for i := 0; i < n; i++ {
		t := &Thread{
			Global:   len(m.threads),
			Local:    i,
			Proc:     p,
			affinity: all,
			core:     -1,
			blocked:  true,
			lastRan:  -1,
		}
		for k := hmp.ClusterKind(0); k < hmp.NumClusters; k++ {
			t.speedFactor[k] = prog.SpeedFactor(i, k)
		}
		p.Threads = append(p.Threads, t)
		m.threads = append(m.threads, t)
	}
	for i, t := range p.Threads {
		if i > 0 {
			t.sibPrev = p.Threads[i-1]
		}
		if i+1 < len(p.Threads) {
			t.sibNext = p.Threads[i+1]
		}
	}
	m.procs = append(m.procs, p)
	m.primeSteady()
	prog.Start(p)
	return p
}

// insertID inserts id into list keeping ascending order.
func insertID(list []int32, id int32) []int32 {
	i := len(list)
	for i > 0 && list[i-1] > id {
		i--
	}
	list = append(list, 0)
	copy(list[i+1:], list[i:])
	list[i] = id
	return list
}

// removeID removes id from list (which must contain it).
func removeID(list []int32, id int32) []int32 {
	for i, x := range list {
		if x == id {
			copy(list[i:], list[i+1:])
			return list[:len(list)-1]
		}
	}
	return list
}

// makeRunnable marks a blocked thread runnable, maintaining the incremental
// run-queue state (counters eagerly, list membership deferred mid-execute).
func (m *Machine) makeRunnable(t *Thread) {
	if !t.blocked {
		return
	}
	t.blocked = false
	if t.core >= 0 {
		m.cores[t.core].runLen++
	}
	m.updateMisplaced(t)
	if m.inExec {
		if !t.journaled {
			t.journaled = true
			m.journal = append(m.journal, t)
		}
		return
	}
	m.reconcileThread(t)
}

// makeBlocked parks a runnable thread.
func (m *Machine) makeBlocked(t *Thread) {
	if t.blocked {
		return
	}
	t.blocked = true
	if t.core >= 0 {
		m.cores[t.core].runLen--
	}
	if t.misplaced {
		t.misplaced = false
		m.misplaced--
	}
	if m.inExec {
		if !t.journaled {
			t.journaled = true
			m.journal = append(m.journal, t)
		}
		return
	}
	m.reconcileThread(t)
}

// updateMisplaced recomputes the thread's contribution to the machine's
// misplaced-runnable counter. Call after any change to the thread's
// runnability, placement, or affinity.
func (m *Machine) updateMisplaced(t *Thread) {
	mis := !t.blocked && (t.core < 0 || !t.affinity.Has(t.core))
	if mis != t.misplaced {
		t.misplaced = mis
		if mis {
			m.misplaced++
		} else {
			m.misplaced--
		}
	}
}

// reconcileThread syncs the thread's run-queue list membership with its
// current state.
func (m *Machine) reconcileThread(t *Thread) {
	runnable := !t.blocked
	if runnable != t.inRunnable {
		if runnable {
			m.runnable = insertID(m.runnable, int32(t.Global))
		} else {
			m.runnable = removeID(m.runnable, int32(t.Global))
		}
		t.inRunnable = runnable
	}
	queued := runnable && t.core >= 0
	if queued != t.queued {
		if queued {
			m.cores[t.core].run = insertID(m.cores[t.core].run, int32(t.Global))
		} else {
			m.cores[t.core].run = removeID(m.cores[t.core].run, int32(t.Global))
		}
		t.queued = queued
	}
}

// reconcile applies the journaled membership changes at the end of a tick.
func (m *Machine) reconcile() {
	for _, t := range m.journal {
		t.journaled = false
		m.reconcileThread(t)
	}
	m.journal = m.journal[:0]
}

// Run advances the simulation by d simulated time.
func (m *Machine) Run(d Time) { m.RunUntil(m.now + d) }

// RunUntil advances the simulation until the clock reaches t. Stretches
// during which the machine is provably inert (see InertUntil) are jumped in
// one FastForward instead of stepped tick by tick, and busy-but-steady
// stretches (see SteadyUntil) run through RunSteady's tight loop; the
// resulting state is bit-for-bit identical either way.
func (m *Machine) RunUntil(t Time) { m.runUntil(t, nil) }

// RunUntilCached is RunUntil with inert jumps routed through a JumpCache
// (see FastForwardCached): identical resulting state, shared replay work.
func (m *Machine) RunUntilCached(t Time, jc *JumpCache) { m.runUntil(t, jc) }

func (m *Machine) runUntil(t Time, jc *JumpCache) {
	for m.now < t {
		if until := m.InertUntil(t); until > m.now {
			m.fastForward(until, jc)
			continue
		}
		if !m.steadyOff {
			if m.steadySkip > 0 {
				m.steadySkip--
			} else if until := m.SteadyUntil(t); until >= m.now+steadyMinTicks*m.cfg.TickLen && m.RunSteady(until) {
				continue
			} else {
				m.steadySkip = steadySkipTicks
			}
		}
		m.Step()
	}
}

// Step advances the simulation by one tick.
func (m *Machine) Step() {
	m.fireTimers()
	if m.placer != nil {
		m.placer.Place(m)
	}
	m.execute()
	m.integratePower()
	for _, d := range m.daemons {
		d.Tick(m)
	}
	m.now += m.cfg.TickLen
	m.ticks++
}

func (m *Machine) execute() {
	tick := m.cfg.TickLen
	m.execTick++
	// Freeze the run queues for the duration of the tick: threads unblocked
	// by a UnitDone callback mid-tick must not run until the next tick, and
	// threads blocked mid-tick still appear (and consume nothing) — exactly
	// the semantics of the historical full-thread rescan, without building
	// per-tick snapshots. List edits are journaled and applied at the end.
	m.inExec = true
	var speedByCluster [hmp.NumClusters]float64
	for k := hmp.ClusterKind(0); k < hmp.NumClusters; k++ {
		speedByCluster[k] = m.freqScale[k][m.levels[k]]
	}
	for i := range m.cores {
		c := &m.cores[i]
		c.tickUse = 0
		avail := float64(tick)
		// Manager overhead charged to this core steals capacity first.
		if c.stolen > 0 {
			steal := c.stolen
			if steal > tick {
				steal = tick
			}
			c.stolen -= steal
			avail -= float64(steal)
			c.tickUse += float64(steal)
			c.busy += float64(steal)
		}
		n := len(c.run)
		if n == 0 || avail <= 0 {
			continue
		}
		share := avail / float64(n)
		cluster := c.cluster
		speedBase := speedByCluster[cluster]
		for _, id := range c.run {
			t := m.threads[id]
			if t.penalty == 0 {
				// Fast path: no pending stall. The arithmetic below is the
				// first iteration of runThreadSlow's loop, verbatim, so the
				// results are bit-for-bit those of the general path.
				if t.blocked {
					continue // blocked mid-tick by an earlier UnitDone
				}
				speed := speedBase * t.speedFactor[cluster] * m.cacheFactor(t, cluster)
				if speed <= 0 {
					continue
				}
				needUS := t.remaining / speed * 1e6
				if needUS > share {
					// The unit outlives the tick: partial progress only.
					done := speed * share / 1e6
					t.remaining -= done
					t.workDone += done
					c.tickUse += share
					c.busy += share
					t.lastRan = m.execTick
					continue
				}
				used := m.runThreadSlow(t, share, speed)
				c.tickUse += used
				c.busy += used
				if used > 0 {
					t.lastRan = m.execTick
				}
				continue
			}
			used := m.runThread(t, c, share, speedBase)
			c.tickUse += used
			c.busy += used
			if used > 0 {
				t.lastRan = m.execTick
			}
		}
	}
	m.inExec = false
	m.reconcile()
}

// runThread gives thread t a budget of µs on core c and returns how much of
// it the thread actually consumed.
func (m *Machine) runThread(t *Thread, c *coreState, budget, speedBase float64) float64 {
	used := 0.0
	// Pay any pending migration penalty (stall burns CPU time).
	if t.penalty > 0 {
		pay := float64(t.penalty)
		if pay > budget {
			pay = budget
		}
		t.penalty -= Time(pay)
		budget -= pay
		used += pay
	}
	speed := speedBase * t.speedFactor[c.cluster] * m.cacheFactor(t, c.cluster)
	if speed <= 0 {
		return used
	}
	return used + m.runThreadSlow(t, budget, speed)
}

// runThreadSlow runs the unit-completion loop for a thread whose effective
// speed has been resolved.
func (m *Machine) runThreadSlow(t *Thread, budget, speed float64) float64 {
	used := 0.0
	for completions := 0; budget > 0 && !t.blocked; {
		needUS := t.remaining / speed * 1e6
		if needUS > budget {
			done := speed * budget / 1e6
			t.remaining -= done
			t.workDone += done
			used += budget
			return used
		}
		// Unit completes within the budget.
		budget -= needUS
		used += needUS
		t.workDone += t.remaining
		t.remaining = 0
		completions++
		if completions > m.cfg.MaxUnitsPerTick {
			panic(fmt.Sprintf("sim: thread %s/%d completed >%d units in one tick; zero-size work units?",
				t.Proc.Name, t.Local, m.cfg.MaxUnitsPerTick))
		}
		m.makeBlocked(t) // program must hand out work to keep running
		t.Proc.prog.UnitDone(t.Proc, t.Local)
	}
	return used
}

// cacheFactor returns the constructive cache-sharing multiplier for thread t
// running on cluster k: programs that declare a cache bonus run faster when
// an adjacent sibling thread (ID ± 1) is placed on the same cluster. This is
// the effect the paper's chunk-based scheduler exploits. The bonus is
// resolved once at Spawn (Process.cacheBonus).
func (m *Machine) cacheFactor(t *Thread, k hmp.ClusterKind) float64 {
	bonus := t.Proc.cacheBonus
	if bonus == 0 {
		return 1
	}
	// ClusterOf(core) == k, inlined for the two-cluster platform:
	// (core < nLittle) == (k == Little).
	little := k == hmp.Little
	if nb := t.sibPrev; nb != nil && nb.core >= 0 && (nb.core < m.nLittle) == little {
		return 1 + bonus
	}
	if nb := t.sibNext; nb != nil && nb.core >= 0 && (nb.core < m.nLittle) == little {
		return 1 + bonus
	}
	return 1
}

func (m *Machine) integratePower() {
	if m.cfg.Power == nil || m.failed {
		return
	}
	for k := hmp.ClusterKind(0); k < hmp.NumClusters; k++ {
		busy := m.busyScratch[k]
		last := m.lastTickUse[k]
		first := m.plat.FirstCPU(k)
		// Online-aware models see the cluster's online-core count so that
		// hotplugged-off cores stop drawing leakage; while every core is
		// online (the overwhelmingly common case, checked against the full
		// mask in O(1)) the historical ClusterPower path runs unchanged.
		online := m.plat.Clusters[k].Cores
		if m.opm != nil && m.online != m.allMask {
			online = m.OnlineCount(k)
		}
		changed := !m.powerValid[k] || m.levels[k] != m.lastLevel[k] ||
			online != m.lastOnline[k]
		for i := range busy {
			tu := m.cores[first+i].tickUse
			if tu != last[i] {
				last[i] = tu
				busy[i] = tu / m.tickUS
				changed = true
			}
		}
		if changed {
			var p float64
			if m.opm != nil && online != m.plat.Clusters[k].Cores {
				p = m.opm.ClusterPowerOnline(k, m.levels[k], busy, online)
			} else {
				p = m.cfg.Power.ClusterPower(k, m.levels[k], busy)
			}
			m.lastE[k] = p * m.tickSec
			m.lastPW[k] = p
			m.lastLevel[k] = m.levels[k]
			m.lastOnline[k] = online
			m.powerValid[k] = true
		}
		e := m.lastE[k]
		m.clusterEnergyJ[k] += e
		m.energyJ += e
	}
}

// Migrate places thread t on the given CPU, applying a migration stall if
// the core actually changes. Placers and runtime managers call this.
func (m *Machine) Migrate(t *Thread, cpu int) {
	if cpu == t.core {
		return
	}
	if cpu < 0 || cpu >= len(m.cores) {
		panic(fmt.Sprintf("sim: migrate to invalid cpu %d", cpu))
	}
	if !m.online.Has(cpu) {
		panic(fmt.Sprintf("sim: migrate to offline cpu %d", cpu))
	}
	if t.core >= 0 {
		if m.plat.ClusterOf(t.core) != m.plat.ClusterOf(cpu) {
			t.penalty += m.cfg.MigrationPenaltyCross
		} else {
			t.penalty += m.cfg.MigrationPenaltySame
		}
		t.migrations++
	}
	if m.tracer != nil {
		m.emit(Event{
			T: m.now, Kind: EvMigrate, Proc: t.Proc.Name, Thread: t.Local,
			From: t.core, To: cpu,
		})
	}
	if t.queued {
		m.cores[t.core].run = removeID(m.cores[t.core].run, int32(t.Global))
		t.queued = false
	}
	if !t.blocked && t.core >= 0 {
		m.cores[t.core].runLen--
	}
	t.core = cpu
	if !t.blocked {
		c := &m.cores[cpu]
		c.runLen++
		c.run = insertID(c.run, int32(t.Global))
		t.queued = true
	}
	m.updateMisplaced(t)
}

// ChargeOverhead accounts d µs of runtime-manager CPU time against the given
// CPU: the time is stolen from the core's capacity over the following ticks
// and added to the machine-wide overhead counter (the paper's Figure 5.3(b)
// "CPU utilization" of HARS).
func (m *Machine) ChargeOverhead(cpu int, d Time) {
	if d <= 0 {
		return
	}
	if cpu < 0 || cpu >= len(m.cores) || !m.online.Has(cpu) {
		cpu = m.firstOnline()
	}
	m.cores[cpu].stolen += d
	m.overhead += d
}

// firstOnline returns the lowest-numbered online CPU (CPU 0 if none is
// online, so overhead accounting never loses time).
func (m *Machine) firstOnline() int {
	for cpu := range m.cores {
		if m.online.Has(cpu) {
			return cpu
		}
	}
	return 0
}

// Overhead returns the total manager CPU time charged so far.
func (m *Machine) Overhead() Time { return m.overhead }

// OverheadUtil returns charged manager CPU time as a fraction of elapsed
// time on one core — the paper's runtime-overhead metric.
func (m *Machine) OverheadUtil() float64 {
	if m.now == 0 {
		return 0
	}
	return float64(m.overhead) / float64(m.now)
}

// EnergyJ returns total energy drawn since construction, in joules.
func (m *Machine) EnergyJ() float64 { return m.energyJ }

// ClusterEnergyJ returns the energy drawn by cluster k, in joules.
func (m *Machine) ClusterEnergyJ(k hmp.ClusterKind) float64 { return m.clusterEnergyJ[k] }

// LastTickPowerW returns the watts cluster k drew during the most recently
// integrated tick (0 before the first tick, or when the machine has no power
// model). Thermal models read this as their per-tick heat input.
func (m *Machine) LastTickPowerW(k hmp.ClusterKind) float64 { return m.lastPW[k] }

// AvgPowerW returns average power since t=0 in watts.
func (m *Machine) AvgPowerW() float64 {
	if m.now == 0 {
		return 0
	}
	return m.energyJ / Seconds(m.now)
}

// BusyTime returns the cumulative busy time of the given CPU.
func (m *Machine) BusyTime(cpu int) Time { return Time(m.cores[cpu].busy) }

// Util returns the lifetime utilization of the given CPU in [0, 1].
func (m *Machine) Util(cpu int) float64 {
	if m.now == 0 {
		return 0
	}
	return m.cores[cpu].busy / float64(m.now)
}

// RunQueueLen returns how many runnable threads are currently placed on cpu.
// The count is maintained incrementally on block, unblock, and migrate
// transitions, so this is O(1); placers use it for balancing decisions.
func (m *Machine) RunQueueLen(cpu int) int {
	return m.cores[cpu].runLen
}

// RunnableCount returns how many threads are currently runnable machine-wide
// (placed or not), in O(1). Fleet placement policies use it as the node's
// instantaneous load. During execute the count may lag mid-tick transitions;
// daemons and between-tick callers always see the reconciled value.
func (m *Machine) RunnableCount() int {
	return len(m.runnable)
}
