package experiments

import (
	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Fig53Distances is the d sweep of Figure 5.3 (1 to 9, step 2).
var Fig53Distances = []int{1, 3, 5, 7, 9}

// Fig53Point is one point of Figure 5.3: the geometric-mean efficiency
// (normalized to d = 1) and the mean runtime-manager CPU utilization over
// all benchmarks at one distance bound.
type Fig53Point struct {
	D          int
	PP         float64 // geometric mean of perf/watt over benchmarks (absolute)
	RelPP      float64 // PP normalized to the d = 1 point
	CPUUtilPct float64 // mean manager CPU utilization (%)
	TargetFrac float64
}

// RunFig53 sweeps the explored-space bound d for the HARS-EI version
// (m = n = 4) at one target fraction.
func RunFig53(e *Env, targetFrac float64) []Fig53Point {
	benches := workload.All()
	for _, b := range benches {
		e.MaxRate(b)
	}
	type job struct{ di, bi int }
	var jobs []job
	for di := range Fig53Distances {
		for bi := range benches {
			jobs = append(jobs, job{di, bi})
		}
	}
	results := make([]RunResult, len(jobs))
	parallelFor(len(jobs), func(i int) {
		j := jobs[i]
		b := benches[j.bi]
		tgt := e.Target(b, targetFrac)
		results[i] = e.RunHARS(b, tgt, core.Config{
			Version: core.HARSEI,
			Params:  core.SearchParams{M: 4, N: 4, D: Fig53Distances[j.di]},
		})
	})
	points := make([]Fig53Point, len(Fig53Distances))
	for di, d := range Fig53Distances {
		var pps, utils []float64
		for i, j := range jobs {
			if j.di != di {
				continue
			}
			pps = append(pps, results[i].PP)
			utils = append(utils, results[i].OverheadUtil*100)
		}
		points[di] = Fig53Point{
			D:          d,
			PP:         stats.GeoMean(pps),
			CPUUtilPct: stats.Mean(utils),
			TargetFrac: targetFrac,
		}
	}
	base := points[0].PP
	for i := range points {
		if base > 0 {
			points[i].RelPP = points[i].PP / base
		}
	}
	return points
}

// Fig53 regenerates Figure 5.3: (a) normalized perf/watt and (b) manager CPU
// utilization versus the explored-space distance d, for both the default and
// the high performance target.
func Fig53(e *Env) *Report {
	def := RunFig53(e, 0.50)
	high := RunFig53(e, 0.75)
	rep := &Report{Title: "Figure 5.3: efficiency and overhead vs explored space size (HARS-EI, m=n=4)"}
	rep.Table.Header = []string{"d", "perf/watt (default)", "perf/watt (high)", "CPU util % (default)", "CPU util % (high)"}
	ppDef := &stats.Series{Name: "pp-default"}
	ppHigh := &stats.Series{Name: "pp-high"}
	utDef := &stats.Series{Name: "util-default"}
	utHigh := &stats.Series{Name: "util-high"}
	for i := range def {
		rep.Table.AddRow(
			stats.F(float64(def[i].D), 0),
			stats.F(def[i].RelPP, 3),
			stats.F(high[i].RelPP, 3),
			stats.F(def[i].CPUUtilPct, 2),
			stats.F(high[i].CPUUtilPct, 2),
		)
		ppDef.Add(float64(def[i].D), def[i].RelPP)
		ppHigh.Add(float64(high[i].D), high[i].RelPP)
		utDef.Add(float64(def[i].D), def[i].CPUUtilPct)
		utHigh.Add(float64(high[i].D), high[i].CPUUtilPct)
	}
	rep.Series = []*stats.Series{ppDef, ppHigh, utDef, utHigh}
	rep.Charts = []string{
		stats.Chart("(a) normalized perf/watt vs d", []*stats.Series{ppDef, ppHigh}, 48, 10),
		stats.Chart("(b) manager CPU utilization (%) vs d", []*stats.Series{utDef, utHigh}, 48, 10),
	}
	rep.Notes = append(rep.Notes,
		"perf/watt normalized to d=1 within each target; geometric mean over the six benchmarks")
	return rep
}
