package repro

import (
	"fmt"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/gts"
	"repro/internal/heartbeat"
	"repro/internal/hmp"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/workload"
)

// These tests pin the incremental run-queue scheduler (per-core queues
// maintained on block/unblock/migrate transitions, O(1) RunQueueLen, the
// mask balancer's misplaced/hysteresis fast paths, and the power-integration
// memo) to the historical full-scan implementation: the golden digests below
// were captured from the pre-refactor simulator and every refactor since
// must reproduce them bit-for-bit — identical placements, heartbeats,
// work, migrations, busy time, and energy.

// digest summarizes a machine's end state exactly (energy as raw float bits).
type runDigest struct {
	energy   float64
	beats    []int64
	work     []float64
	mig      []int
	busy     sim.Time
	overhead sim.Time
	rq       int
}

func digestOf(m *sim.Machine) runDigest {
	d := runDigest{energy: m.EnergyJ(), overhead: m.Overhead()}
	for _, p := range m.Procs() {
		mig := 0
		for _, t := range p.Threads {
			mig += t.Migrations()
		}
		d.beats = append(d.beats, p.HB.Count())
		d.work = append(d.work, p.WorkDone())
		d.mig = append(d.mig, mig)
	}
	for cpu := 0; cpu < m.Platform().TotalCores(); cpu++ {
		d.busy += m.BusyTime(cpu)
		d.rq += m.RunQueueLen(cpu) * (cpu + 1)
	}
	return d
}

func checkDigest(t *testing.T, got runDigest, energy string, beats []int64, work []string, mig []int, busy, overhead sim.Time, rq int) {
	t.Helper()
	if s := floatHex(got.energy); s != energy {
		t.Errorf("energy = %s, want %s", s, energy)
	}
	for i := range beats {
		if got.beats[i] != beats[i] {
			t.Errorf("proc %d beats = %d, want %d", i, got.beats[i], beats[i])
		}
		if s := floatHex(got.work[i]); s != work[i] {
			t.Errorf("proc %d work = %s, want %s", i, s, work[i])
		}
		if got.mig[i] != mig[i] {
			t.Errorf("proc %d migrations = %d, want %d", i, got.mig[i], mig[i])
		}
	}
	if got.busy != busy {
		t.Errorf("busy = %d, want %d", got.busy, busy)
	}
	if got.overhead != overhead {
		t.Errorf("overhead = %d, want %d", got.overhead, overhead)
	}
	if got.rq != rq {
		t.Errorf("run-queue digest = %d, want %d", got.rq, rq)
	}
}

// floatHex renders a float64 exactly (%x is stable for finite values).
func floatHex(f float64) string { return fmt.Sprintf("%x", f) }

// rqChecker cross-checks the O(1) RunQueueLen counters against a brute-force
// rescan of every thread, every tick.
type rqChecker struct {
	t *testing.T
}

func (c *rqChecker) Tick(m *sim.Machine) {
	for cpu := 0; cpu < m.Platform().TotalCores(); cpu++ {
		want := 0
		for _, th := range m.Threads() {
			if th.Runnable() && th.Core() == cpu {
				want++
			}
		}
		if got := m.RunQueueLen(cpu); got != want {
			c.t.Fatalf("t=%d cpu=%d: RunQueueLen = %d, brute force = %d", m.Now(), cpu, got, want)
		}
	}
}

// TestEquivalenceSWMaskBalancer pins the data-parallel (SW) workload under
// the default mask balancer.
func TestEquivalenceSWMaskBalancer(t *testing.T) {
	plat := hmp.Default()
	m := sim.New(plat, sim.Config{Power: power.DefaultGroundTruth(plat)})
	b, _ := workload.ByShort("SW")
	m.Spawn("sw", b.New(8), 10)
	m.AddDaemon(&rqChecker{t})
	m.Run(5 * sim.Second)
	checkDigest(t, digestOf(m),
		"0x1.0cf56d292c018p+05",
		[]int64{9}, []string{"0x1.0442a9930bd98p+06"}, []int{0},
		30502380, 0, 36)
}

// TestEquivalenceFEMaskBalancer pins the pipeline (FE) workload — heavy
// block/unblock churn and migrations — under the mask balancer.
func TestEquivalenceFEMaskBalancer(t *testing.T) {
	plat := hmp.Default()
	m := sim.New(plat, sim.Config{Power: power.DefaultGroundTruth(plat)})
	b, _ := workload.ByShort("FE")
	m.Spawn("fe", b.New(8), 10)
	m.AddDaemon(&rqChecker{t})
	m.Run(5 * sim.Second)
	checkDigest(t, digestOf(m),
		"0x1.9ef9c1375a5cep+05",
		[]int64{82}, []string{"0x1.6b18bb52e034dp+06"}, []int{296},
		39411319, 0, 97)
}

// TestEquivalenceHARSE pins an adapting HARS-E manager run: affinity masks,
// DVFS transitions, overhead charging, and ten full search sweeps.
func TestEquivalenceHARSE(t *testing.T) {
	plat := hmp.Default()
	m := sim.New(plat, sim.Config{Power: power.DefaultGroundTruth(plat)})
	b, _ := workload.ByShort("SW")
	p := m.Spawn("sw", b.New(8), 10)
	lm := power.SyntheticLinearModel(plat)
	tgt := heartbeat.Target{Min: 5.0, Avg: 6.0, Max: 7.0}
	mgr := core.NewManager(m, p, lm, tgt, core.Config{Version: core.HARSE, OverheadCPU: 4, AdaptEvery: 2})
	m.AddDaemon(mgr)
	m.AddDaemon(&rqChecker{t})
	m.Run(12 * sim.Second)
	if got, want := mgr.State().String(), "B3@L7 L3@L5"; got != want {
		t.Errorf("settled state = %s, want %s", got, want)
	}
	if mgr.Searches() != 10 || mgr.ExploredTotal() != 4554 || len(mgr.Decisions()) != 10 {
		t.Errorf("searches/explored/decisions = %d/%d/%d, want 10/4554/10",
			mgr.Searches(), mgr.ExploredTotal(), len(mgr.Decisions()))
	}
	checkDigest(t, digestOf(m),
		"0x1.64130d879c9acp+06",
		[]int64{21}, []string{"0x1.36612fd32c78ap+07"}, []int{60},
		68034154, 712100, 35)
}

// TestEquivalenceGTS pins a two-application run under the GTS scheduler
// model (exercising the RanLastTick load tracking the stamp refactor kept).
func TestEquivalenceGTS(t *testing.T) {
	plat := hmp.Default()
	m := sim.New(plat, sim.Config{Power: power.DefaultGroundTruth(plat)})
	m.SetPlacer(gts.New(plat))
	bo, _ := workload.ByShort("BO")
	fe, _ := workload.ByShort("FE")
	m.Spawn("bo", bo.New(4), 10)
	m.Spawn("fe", fe.New(4), 10)
	m.AddDaemon(&rqChecker{t})
	m.Run(5 * sim.Second)
	checkDigest(t, digestOf(m),
		"0x1.a3a5f235a1e11p+05",
		[]int64{9, 59}, []string{"0x1.c83083c67d43cp+04", "0x1.fc83a184d8e24p+05"}, []int{55, 210},
		39002599, 0, 60)
}

// TestSearchZeroAllocs asserts that a warm GetNextSysState sweep allocates
// nothing: the PerfEval memo table is preallocated by NewEstimators and the
// sweep itself is closure-free.
func TestSearchZeroAllocs(t *testing.T) {
	est := bench.SearchEstimators()
	plat := est.Perf.Plat
	cs := hmp.State{BigCores: 2, LittleCores: 2, BigLevel: 4, LittleLevel: 3}
	tgt := heartbeat.Target{Min: 1.8, Avg: 2.0, Max: 2.2}
	prm := core.SearchParams{M: 4, N: 4, D: 7}
	b := core.Unbounded(plat)
	core.Search(est, cs, 3.0, tgt, prm, b) // warm the memo
	allocs := testing.AllocsPerRun(100, func() {
		if res := core.Search(est, cs, 3.0, tgt, prm, b); res.Explored == 0 {
			t.Fatal("no candidates")
		}
	})
	if allocs != 0 {
		t.Fatalf("core.Search allocates %.1f objects per sweep, want 0", allocs)
	}
}

// TestSearchMemoEquivalence checks that memoized evaluation is bit-for-bit
// the direct computation across the whole state space, and that changing the
// ratio invalidates the memo.
func TestSearchMemoEquivalence(t *testing.T) {
	est := bench.SearchEstimators()
	plat := est.Perf.Plat
	for _, r0 := range []float64{0, 1.37} {
		est.Perf.R0 = r0
		for _, st := range hmp.AllStates(plat, 1) {
			want := est.Perf.Evaluate(st)
			got := est.Perf.EvaluateCached(st)
			if got != want {
				t.Fatalf("R0=%v state %v: cached %+v != direct %+v", r0, st, got, want)
			}
			// Second read must hit the memo and stay identical.
			if got2 := est.Perf.EvaluateCached(st); got2 != want {
				t.Fatalf("R0=%v state %v: second cached read diverged", r0, st)
			}
		}
	}
}
