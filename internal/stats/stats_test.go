package stats

import (
	"math"
	"strings"
	"testing"
)

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %v", got)
	}
}

func TestGeoMean(t *testing.T) {
	if GeoMean(nil) != 0 {
		t.Error("GeoMean(nil) != 0")
	}
	if got := GeoMean([]float64{2, 8}); math.Abs(got-4) > 1e-12 {
		t.Errorf("GeoMean(2,8) = %v, want 4", got)
	}
	if got := GeoMean([]float64{5}); got != 5 {
		t.Errorf("GeoMean(5) = %v", got)
	}
	if !math.IsNaN(GeoMean([]float64{1, -1})) {
		t.Error("GeoMean with negatives should be NaN")
	}
	if !math.IsNaN(GeoMean([]float64{0, 2})) {
		t.Error("GeoMean with zero should be NaN")
	}
}

func TestSeries(t *testing.T) {
	var s Series
	s.Name = "hps"
	s.Add(0, 2)
	s.Add(1, 4)
	s.Add(2, 3)
	if s.Len() != 3 {
		t.Errorf("Len = %d", s.Len())
	}
	lo, hi := s.YRange()
	if lo != 2 || hi != 4 {
		t.Errorf("YRange = %v,%v", lo, hi)
	}
	var empty Series
	lo, hi = empty.YRange()
	if lo != 0 || hi != 0 {
		t.Error("empty YRange should be 0,0")
	}
}

func TestTable(t *testing.T) {
	tb := Table{Title: "Fig X", Header: []string{"bench", "value"}}
	tb.AddRow("BL", "1.25")
	tb.AddRow("bodytrack", "0.5")
	out := tb.String()
	if !strings.Contains(out, "Fig X") || !strings.Contains(out, "bodytrack") {
		t.Fatalf("table output missing content:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, two rows
		t.Fatalf("table has %d lines:\n%s", len(lines), out)
	}
	// Columns align: every data line has the separator width.
	if len(lines[2]) < len("bodytrack") {
		t.Error("separator too narrow")
	}
}

func TestF(t *testing.T) {
	if F(1.23456, 2) != "1.23" {
		t.Errorf("F = %s", F(1.23456, 2))
	}
	if F(math.NaN(), 2) != "n/a" {
		t.Errorf("F(NaN) = %s", F(math.NaN(), 2))
	}
}

func TestCSV(t *testing.T) {
	out := CSV([]string{"a", "b"}, [][]float64{{1, 2}, {3.5, 4}})
	want := "a,b\n1,2\n3.5,4\n"
	if out != want {
		t.Errorf("CSV = %q, want %q", out, want)
	}
}

func TestChart(t *testing.T) {
	s1 := &Series{Name: "up"}
	s2 := &Series{Name: "down"}
	for i := 0; i < 20; i++ {
		s1.Add(float64(i), float64(i))
		s2.Add(float64(i), float64(20-i))
	}
	out := Chart("behaviour", []*Series{s1, s2}, 40, 10)
	if !strings.Contains(out, "behaviour") || !strings.Contains(out, "*=up") || !strings.Contains(out, "o=down") {
		t.Fatalf("chart missing pieces:\n%s", out)
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Fatal("chart has no plotted points")
	}
	if out := Chart("empty", nil, 40, 10); !strings.Contains(out, "no data") {
		t.Error("empty chart should say no data")
	}
	// Degenerate sizes are clamped, flat series get an expanded axis.
	flat := &Series{Name: "flat"}
	flat.Add(1, 5)
	flat.Add(1, 5)
	if out := Chart("flat", []*Series{flat}, 1, 1); out == "" {
		t.Error("flat chart empty")
	}
}
